#!/usr/bin/env python3
"""simlint — project-specific static analysis for the nvmooc simulator.

The simulator's headline guarantee is *bit-identical replay*: the same
scenario and seed must produce the same ExperimentResult on every run,
on every machine.  The rules here reject the constructs that historically
break that guarantee, plus unit-safety escapes around the strong Time /
Bytes wrapper types (src/common/units.hpp), plus — since v3 — the
shard-safety contract (src/common/shard_domain.hpp) that clears the
runway for the conservative parallel DES mode: every piece of mutable
state reachable from event dispatch must declare which shard domain owns
it, and the machine-readable inventory (--shard-report) is the artifact
the future parallel scheduler consumes.

Rules
-----
  SL001 wall-clock          std::chrono / time() / gettimeofday / clock()
                            outside the observability allowlist.  Sim code
                            must read time from the simulated clock only.
  SL002 ambient-rng         rand() / srand() / std::random_device /
                            /dev/urandom.  All randomness must flow from a
                            seeded nvmooc::Rng carried through the call
                            graph.
  SL003 unordered-iter      Iteration over std::unordered_{map,set} in
                            sim-affecting code.  Hash-table iteration
                            order is implementation-defined and varies
                            with libstdc++ version, so any fold over it
                            that is not order-independent breaks replay.
  SL004 float-to-time       Floating-point values laundered into Time
                            through the integral constructor (e.g.
                            Time{static_cast<int64_t>(x * 1.5)}).  The
                            sanctioned conversion is from_seconds(), which
                            documents its rounding in one place.
  SL005 default-seeded-rng  A std <random> engine declared without an
                            explicit seed.  Default-constructed engines
                            are deterministic per the standard but differ
                            across implementations; an explicit seed makes
                            the intent auditable.
  SL006 request-lifecycle   Misuse of the src/check request-lifecycle
                            hooks: a TU that reports later stages
                            (request_admitted / request_dispatched /
                            request_media / request_completed) without
                            ever calling request_issued, or a
                            request_issued call whose returned id is
                            discarded.  Either way the auditor sees a
                            request that can never be completed (or
                            stages with no matching issue), so every
                            audited replay of that code path reports
                            phantom causality violations.  The causal
                            profiler (src/obs/profiler.hpp) follows the
                            same discipline: a TU recording request_gate
                            / request_segment / request_complete edges
                            must mint the id with request_begin (the
                            device-side hooks media_segment /
                            timeline_busy / io_path_expansion attach to
                            the engine's open request and are exempt).
  SL007 missing-nodiscard   A header-file API returning Time or Bytes by
                            value without [[nodiscard]].  These types are
                            the unit system's whole point; silently
                            dropping one (e.g. calling a cost function
                            for its side effects that has none) is always
                            a bug.  Headers only — definitions in .cpp
                            files inherit the declaration's attribute.
  SL008 unit-narrowing      static_cast of a Time{}.ps() or Bytes{}
                            .value() escape hatch to a type narrower than
                            the underlying 64-bit representation (int,
                            unsigned, float, int32_t, ...).  Picosecond
                            counts overflow int32 after ~2 ms of sim time
                            and floats lose byte-exactness above 2^24, so
                            narrowing reintroduces exactly the silent
                            truncation the wrappers exist to prevent.
                            Cast to double / int64_t / uint64_t instead.
  SL009 shard-inventory     A mutable namespace-scope global, static
                            local, class-static, or thread_local without
                            a SIM_SHARD_DOMAIN / SIM_SHARD_SHARED
                            annotation.  The parallel DES can only be
                            proven race-free if every piece of long-lived
                            mutable state declares its owning shard
                            domain; the inventory is a sound
                            over-approximation of "reachable from event
                            dispatch" (everything linked into the
                            simulator is scanned — no call-graph
                            heroics, no silent gaps).
  SL010 cross-domain-access Code in one shard domain touching another
                            domain's state without going through the
                            event queue: a domain-annotated class whose
                            member embeds a *coarser* domain's annotated
                            type (Simulator / EventQueue are exempt —
                            they ARE the passage point), or a method of a
                            domain-annotated class naming a
                            domain-annotated global of a different
                            domain on a line with no Simulator::at /
                            after / schedule call.
  SL011 non-reentrant-std   Non-reentrant C/C++ facilities on the
                            dispatch path: strtok, strerror, asctime /
                            ctime, setlocale, tmpnam, setenv/putenv, or
                            a function-local `static std::string`
                            scratch buffer.  All of these carry hidden
                            process-wide state that races the moment the
                            event loop shards.
  SL012 shard-annotation    Annotation hygiene: SIM_SHARD_DOMAIN with an
                            unknown domain name (vocabulary: die,
                            package, channel, node, global, owner) or a
                            non-literal argument, and SIM_SHARD_SHARED
                            without a meaningful synchronisation note.
  SL013 shard-escape        (v4, call-graph) A method of a die/package/
                            channel-domain class *transitively* reaches a
                            write to state owned by a different
                            non-ancestor domain: the checker builds a
                            cross-TU call graph (over-approximated by
                            name) and walks it from every ranked-domain
                            method; calls placed on a line with a
                            Simulator::at/after or EventQueue::schedule
                            call are the sanctioned crossing points and
                            are not traversed.  Direct touches are
                            SL010's job; SL013 exists for the buried
                            helper two calls down.
  SL014 handler-purity      (v4) A lambda passed to Simulator::at/after
                            or EventQueue::schedule that names (captures
                            or reaches for) a shard-owned annotated
                            global of a *foreign* ranked domain.  The
                            handler runs on the target shard's thread in
                            parallel mode, so foreign-domain state in its
                            body is exactly the race the queue exists to
                            prevent.
  SL015 shared-state-sync   (v4) Every SIM_SHARD_SHARED variable must be
                            reached only through its declared access set:
                            a note carrying `via A and B only` confines
                            references to the bodies of the named
                            functions / the methods of the named classes;
                            a note without a via clause confines the
                            symbol to its declaring file; function-local
                            statics are implicitly confined by the
                            language and never need a clause.

Engines
-------
  --engine matcher   (default fallback) A token-level matcher: comments,
                     string and char literals are stripped before rules
                     run, and SL003 resolves container member types
                     through the translation unit's in-project include
                     closure.  No third-party dependencies.
  --engine libclang  AST-accurate matching via clang.cindex when the
                     libclang Python bindings are installed.  Falls back
                     with a notice under --engine auto when they are not.
                     The matcher engine is the one CI gates on so results
                     do not depend on toolchain availability.

Shard report
------------
  --shard-report FILE  Writes the machine-readable state inventory
                       (domain -> files -> symbols, shared entries with
                       their synchronisation notes, unannotated strays)
                       aggregated over the scanned roots.  Since v4 the
                       schema is nvmooc-shard-report-v2: a `state_access`
                       section classifies every inventory symbol as
                       read-mostly or mutated-in-handler (written by a
                       function the call graph can reach from a
                       domain-annotated class method).  The checked-in
                       SHARD_REPORT.json is generated over src/ and is
                       the contract the parallel scheduler consumes.
  --shard-check FILE   Regenerates the inventory and fails (exit 1) on
                       any drift against FILE — new shared state is an
                       explicit reviewed decision, not an accident.  A
                       pinned v1 report is still accepted for one
                       release: the v2-only fields are stripped before
                       comparing.

Allowlist hygiene
-----------------
  Suppressions must stay tethered to real findings.  When a tree scan
  finds an inline `simlint: allow(...)` that suppressed nothing, or a
  simlint.conf entry that matched no finding, the scan fails (the stale
  entry is dead armor — it will silently swallow the next real finding
  at that site).  --allowlist-audit downgrades staleness to a warning
  for incremental cleanup.

Parallelism & output
--------------------
  --jobs N          Lint translation units in parallel (default: the
                    machine's CPU count; findings and the report stay
                    deterministically sorted regardless of N).
  --format json     Machine-readable findings (file/line/rule/name/
                    message) instead of the gcc-style text lines the
                    GitHub problem matcher consumes.

Suppression
-----------
  Inline:     // simlint: allow(unordered-iter) -- reason
              on the offending line or the line directly above it.
  Allowlist:  tools/simlint/simlint.conf maps rules to path globs
              (e.g. the observability layer may read the wall clock to
              stamp Chrome-trace exports).

Exit status: 0 clean, 1 findings (or shard-report drift), 2 usage/config
error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DEFAULT_CONF = os.path.join(os.path.dirname(os.path.abspath(__file__)), "simlint.conf")
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

RULE_NAMES = {
    "SL001": "wall-clock",
    "SL002": "ambient-rng",
    "SL003": "unordered-iter",
    "SL004": "float-to-time",
    "SL005": "default-seeded-rng",
    "SL006": "request-lifecycle",
    "SL007": "missing-nodiscard",
    "SL008": "unit-narrowing",
    "SL009": "shard-inventory",
    "SL010": "cross-domain-access",
    "SL011": "non-reentrant-std",
    "SL012": "shard-annotation",
    "SL013": "shard-escape",
    "SL014": "handler-purity",
    "SL015": "shared-state-sync",
}
NAME_TO_ID = {v: k for k, v in RULE_NAMES.items()}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule} {RULE_NAMES[self.rule]}] {self.message}"


# --------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literals so rules
# never fire on prose, while keeping line numbers stable.  Inline allow
# annotations are harvested from comments *before* stripping.  A second
# buffer keeps string literals intact (comments still blanked) so the
# shard rules can read SIM_SHARD_DOMAIN("channel") arguments, which live
# inside string literals by design.

ALLOW_RE = re.compile(r"simlint:\s*allow\(([\w\-*,\s]+)\)")


def preprocess(text: str):
    """Return (stripped_lines, allows, keep_lines) where allows maps
    line-no -> set of rule ids suppressed on that line and the next, and
    keep_lines is the comment-stripped text with string literals kept."""
    out = []
    allows = {}
    i = 0
    n = len(text)
    line = 1
    buf = []
    keep = []

    def note_allow(comment: str, lineno: int) -> None:
        m = ALLOW_RE.search(comment)
        if not m:
            return
        rules = set()
        for token in m.group(1).split(","):
            token = token.strip()
            if token == "*":
                rules.add("*")
            elif token in RULE_NAMES:
                rules.add(token)
            elif token in NAME_TO_ID:
                rules.add(NAME_TO_ID[token])
        allows.setdefault(lineno, set()).update(rules)

    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            note_allow(text[i:j], line)
            buf.append(" " * (j - i))
            keep.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comment = text[i:j]
            note_allow(comment, line)
            for ch in comment:
                blanked = "\n" if ch == "\n" else " "
                buf.append(blanked)
                keep.append(blanked)
            line += comment.count("\n")
            i = j
        elif c == '"' or (c == "'" and not (i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"))):
            # A ' directly after an identifier character is a C++14 digit
            # separator (1'000'000), not a char literal — fall through to
            # plain-text handling for those.
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            # An unterminated literal stops at the newline; leave the
            # newline for the main loop so line numbering never drifts.
            terminated = j < n and text[j] == quote
            if terminated:
                j += 1
                buf.append(quote + " " * (j - i - 2) + quote)
            else:
                buf.append(quote + " " * (j - i - 1))
            keep.append(text[i:j])
            i = j
        else:
            if c == "\n":
                line += 1
            buf.append(c)
            keep.append(c)
            i += 1
    return "".join(buf).split("\n"), allows, "".join(keep).split("\n")


# --------------------------------------------------------------------------
# Include-closure resolution (for SL003 member-type lookup and the shard
# rules' cross-TU class/inventory maps).

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


class IncludeGraph:
    """Resolves project-relative #include "..." directives the way the
    build does (-I src), memoizing each file's transitive closure."""

    def __init__(self, src_root: str):
        self.src_root = src_root
        self._direct = {}
        self._closure = {}

    def _resolve(self, from_file: str, inc: str):
        local = os.path.normpath(os.path.join(os.path.dirname(from_file), inc))
        if os.path.isfile(local):
            return local
        rooted = os.path.normpath(os.path.join(self.src_root, inc))
        if os.path.isfile(rooted):
            return rooted
        return None

    def direct(self, path: str):
        if path not in self._direct:
            deps = []
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    for raw in f:
                        m = INCLUDE_RE.match(raw)
                        if m:
                            resolved = self._resolve(path, m.group(1))
                            if resolved:
                                deps.append(resolved)
            except OSError:
                pass
            self._direct[path] = deps
        return self._direct[path]

    def closure(self, path: str):
        if path in self._closure:
            return self._closure[path]
        seen = set()
        stack = [path]
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            stack.extend(self.direct(p))
        self._closure[path] = seen
        return seen


# Per-process cache of preprocessed files: path -> (lines, allows,
# keep_lines).  Closure texts were previously re-preprocessed for every
# linted TU; memoizing them is most of simlint's serial speedup and makes
# the shard-rule closure lookups essentially free.
_PRE_CACHE = {}
_HARVEST_CACHE = {}


def _preprocessed(path: str):
    cached = _PRE_CACHE.get(path)
    if cached is None:
        try:
            text = open(path, encoding="utf-8", errors="replace").read()
        except OSError:
            cached = ([], {}, [])
        else:
            cached = preprocess(text)
        _PRE_CACHE[path] = cached
    return cached


# --------------------------------------------------------------------------
# Matcher-engine rules.  Each takes the stripped lines (and context) and
# yields (lineno, rule_id, message).

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std\s*::\s*chrono\b"), "std::chrono"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)?\s*\)"), "time()"),
    (re.compile(r"(?<![\w:.>])(?:gettimeofday|clock_gettime|timespec_get)\s*\("), "POSIX clock"),
    (re.compile(r"std\s*::\s*clock\s*\("), "std::clock()"),
    (re.compile(r"(?<![\w:.>])(?:localtime|gmtime|mktime)\s*\("), "calendar time"),
]

AMBIENT_RNG_PATTERNS = [
    (re.compile(r"(?<![\w:.>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"random_device\b"), "random_device"),
    (re.compile(r"/dev/u?random"), "/dev/urandom"),
]

STD_ENGINES = r"(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b)"
# An engine declared with no constructor argument: `std::mt19937 gen;` or
# `std::mt19937 gen{};` or `std::mt19937 gen{}` as a member.
DEFAULT_SEEDED_RE = re.compile(
    r"std\s*::\s*" + STD_ENGINES + r"\s+\w+\s*(?:;|\{\s*\}|\(\s*\))")

UNORDERED_DECL_RE = re.compile(
    r"(?<!\w)(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+(\w+)\s*(?:;|\{|=)")
ORDERED_DECL_RE = re.compile(
    r"(?<![\w_])(?:std\s*::\s*)?(?:map|set|multimap|multiset|vector|deque|array|list)\s*<[^;{}]*>\s+(\w+)\s*(?:;|\{|=)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^)]*)\)")
ITER_CALL_RE = re.compile(r"\b([\w.\->\[\]()]+?)[.\->]+(?:begin|cbegin|rbegin)\s*\(\s*\)")

FLOAT_TO_TIME_RE = re.compile(
    r"\bTime\s*\{(?=[^{}]*(?:\d\.\d|\.\d+\b|\d\.(?:[^\w]|$)|\de[+-]?\d|static_cast\s*<\s*(?:double|float)\s*>|\b(?:double|float)\b))")

# SL006: the auditor's per-request stage hooks. request_issued() mints the
# id the stage calls need; a TU using stages without it (or dropping the
# id on the floor) cannot form a valid lifecycle chain.
LIFECYCLE_STAGE_RE = re.compile(
    r"\b(request_(?:admitted|dispatched|media|completed))\s*\(")
LIFECYCLE_ISSUE_RE = re.compile(r"\brequest_issued\s*\(")
# The causal profiler's engine-side edges (src/obs/profiler.hpp).  The
# alternatives are anchored on the open paren so `request_complete(`
# never half-matches the auditor's `request_completed(`.  Device-side
# hooks (media_segment / timeline_busy / io_path_expansion) attach to
# the profiler's open request and are deliberately not listed.
PROFILE_EDGE_RE = re.compile(
    r"\b(request_(?:gate|segment|complete))\s*\(")
PROFILE_BEGIN_RE = re.compile(r"\brequest_begin\s*\(")
# A bare expression-statement member call whose result vanishes:
# `aud->request_issued(t);` at the start of a statement.  Assignments,
# initialisers, returns and ternaries put tokens before the object
# expression, so anchoring at line start keeps legitimate uses quiet.
LIFECYCLE_DISCARD_RE = re.compile(
    r"^\s*\w+(?:\(\s*\))?\s*(?:->|\.)\s*request_issued\s*\(")

# SL007: a header declaration returning Time/Bytes by value.  References
# never match (no whitespace between the type and `&`), and a leading
# `const` fails the anchor, so `const Time&` accessors are skipped.
NODISCARD_SPECIFIERS = r"(?:(?:virtual|static|constexpr|inline|friend|explicit)\s+)*"
NODISCARD_DECL_RE = re.compile(
    r"^\s*" + NODISCARD_SPECIFIERS + r"(Time|Bytes)\s+([A-Za-z_]\w*)\s*\(")
NODISCARD_ATTR_RE = re.compile(r"\[\[\s*nodiscard\s*\]\]")

# SL008: the narrow destination types.  The trailing `>` in the consuming
# pattern anchors each alternative, so `int` never half-matches
# `int64_t` and `unsigned` never half-matches `unsigned long`.
NARROW_DEST = (r"(?:float|short|char|int|bool|"
               r"(?:un)?signed(?:\s+(?:short|char|int))?|"
               r"(?:std\s*::\s*)?u?int(?:8|16|32)_t)")
UNIT_NARROW_RE = re.compile(
    r"static_cast\s*<\s*(?:const\s+)?" + NARROW_DEST +
    r"\s*>\s*\(\s*[^()]*\.\s*(?:ps|value)\s*\(\s*\)")

# --------------------------------------------------------------------------
# Shard-safety vocabulary (SL009-SL012).  See src/common/shard_domain.hpp
# for the authoritative domain semantics.

SHARD_DOMAINS = ("die", "package", "channel", "node", "global", "owner")
# Containment order for the cross-domain member check; "owner" has no
# rank (it adopts the embedding object's domain).
DOMAIN_RANK = {"die": 0, "package": 1, "channel": 2, "node": 3, "global": 4}
# Types that ARE the cross-domain passage mechanism: holding one is how a
# handler reaches the event queue, never a violation by itself.
QUEUE_PASSAGE_TYPES = {"Simulator", "EventQueue"}
EVENT_QUEUE_CALL_RE = re.compile(r"(?:\.|->)\s*(?:at|after|schedule)\s*\(")
# A lambda expression head inside a schedule-call argument region:
# capture list, optional parameter list / specifiers / trailing return,
# then the body brace (SL014 scans from the head to the matching '}').
LAMBDA_RE = re.compile(
    r"\[(?P<caps>[^\[\]]*)\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:noexcept\s*)?(?:->\s*[\w:<>&*\s]+?\s*)?\{")

# The value group only matches a string literal; a macro invoked with an
# identifier (SIM_SHARD_DOMAIN(kDomain)) matches with value=None, which
# SL012 reports — the matcher reads domains textually, so only literals
# participate in the inventory.
SHARD_ANNOT_RE = re.compile(
    r"\bSIM_SHARD_(?P<kind>DOMAIN|SHARED)\s*\(\s*(?:\"(?P<value>[^\"]*)\"|[^)\"]*)\s*\)")
CLASS_DOMAIN_RE = re.compile(
    r"\b(?:class|struct)\s+SIM_SHARD_DOMAIN\s*\(\s*\"(?P<domain>\w*)\"\s*\)\s+(?P<name>[A-Za-z_]\w*)")
CLASS_SHARED_RE = re.compile(
    r"\b(?:class|struct)\s+SIM_SHARD_SHARED\s*\(\s*\"(?P<note>[^\"]*)\"\s*\)\s+(?P<name>[A-Za-z_]\w*)")
METHOD_DEF_RE = re.compile(
    r"^[^#\n]*?\b(?P<cls>[A-Za-z_]\w*)\s*::\s*~?[A-Za-z_]\w*\s*\(", re.MULTILINE)

# The SL009 inventory: long-lived mutable state.  Three shapes, all
# line-local (the matcher does not parse declarations across lines — the
# project style keeps variable declarations on one line):
#   - thread_local at any scope;
#   - `static` non-const variables (function-local statics and class
#     statics alike — both are global state);
#   - namespace-scope definitions at zero indentation with an
#     initializer or a plain `Type name;` shape (function definitions
#     and declarations carry parentheses and never match).
_ANNOT_PREFIX = r'(?:SIM_SHARD_\w+\s*\(\s*"[^"]*"\s*\)\s*)?'
TLS_VAR_RE = re.compile(
    r"^\s*" + _ANNOT_PREFIX +
    r"(?:inline\s+)?(?:static\s+)?thread_local\s+"
    r"(?P<type>[\w:<>,*&\s]+?)[\s*&]+(?P<name>[A-Za-z_]\w*)\s*(?:;|=[^=]|\{)")
STATIC_VAR_RE = re.compile(
    r"^\s*" + _ANNOT_PREFIX +
    r"(?:inline\s+)?static\s+(?!const\b|constexpr\b|inline\b|thread_local\b|assert\b)"
    r"(?P<type>[\w:<>,*&\s]+?)[\s*&]+(?P<name>[A-Za-z_]\w*)\s*(?:;|=[^=]|\{)")
NS_GLOBAL_RE = re.compile(
    r"^" + _ANNOT_PREFIX +
    r"(?:inline\s+)?"
    r"(?!const\b|constexpr\b|static\b|thread_local\b|using\b|typedef\b|class\b|struct\b"
    r"|enum\b|namespace\b|template\b|extern\b|return\b|friend\b|case\b|if\b|for\b"
    r"|while\b|else\b|do\b|switch\b|break\b|continue\b|goto\b|delete\b|new\b|inline\b"
    r"|public\b|private\b|protected\b|void\b|concept\b|requires\b)"
    r"(?P<type>(?:std\s*::\s*)?[A-Za-z_][\w:]*(?:\s*<[^;()]*>)?)[\s*&]+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:\{[^;()]*\}\s*;|=[^;()]*;|;)\s*$")

NON_REENTRANT_PATTERNS = [
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*)?strtok\s*\("),
     "strtok(): hidden static parse state"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*)?strerror\s*\("),
     "strerror(): static result buffer"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*)?(?:asctime|ctime)\s*\("),
     "asctime()/ctime(): static result buffer"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*)?setlocale\s*\("),
     "setlocale(): process-wide locale mutation"),
    (re.compile(r"(?<![\w.>])(?:std\s*::\s*)?tmpnam\s*\("),
     "tmpnam(): static name buffer"),
    (re.compile(r"(?<![\w.>])(?:setenv|putenv|unsetenv)\s*\("),
     "environment mutation is process-wide and unsynchronised"),
    (re.compile(r"^\s*static\s+(?:std\s*::\s*)?"
                r"(?:string|stringstream|ostringstream|wstring)\s+[A-Za-z_]\w*\s*(?:;|=[^=]|\{)"),
     "function-local static string scratch buffer"),
]


def _sequence_name(expr: str):
    """Extract a trailing identifier from a range-for sequence expression
    (e.g. `wear.erase_counts_` -> `erase_counts_`)."""
    expr = expr.strip()
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return m.group(1) if m else None


# --------------------------------------------------------------------------
# Shard harvesting: annotations, domain-annotated classes, and the
# mutable-state inventory of one file (computed on the keep-strings view
# so annotation arguments survive).

def harvest_shard(path: str):
    cached = _HARVEST_CACHE.get(path)
    if cached is not None:
        return cached
    _, _, keep_lines = _preprocessed(path)
    annotations = []   # (lineno, kind, value-or-None)
    classes = []       # {line, name, domain}
    shared_classes = []  # {line, name, note}
    entries = []       # {line, name, kind, annot: None | (kind, value)}
    annot_by_line = {}
    for lineno, line in enumerate(keep_lines, 1):
        if line.lstrip().startswith("#"):
            # The macro definitions themselves (and conditional-compilation
            # plumbing) live on preprocessor lines; they are vocabulary,
            # not annotations.
            continue
        for m in SHARD_ANNOT_RE.finditer(line):
            value = m.group("value")
            annotations.append((lineno, m.group("kind"), value))
            annot_by_line[lineno] = (m.group("kind"), value)
        m = CLASS_DOMAIN_RE.search(line)
        if m:
            classes.append({"line": lineno, "name": m.group("name"),
                            "domain": m.group("domain")})
        m = CLASS_SHARED_RE.search(line)
        if m:
            shared_classes.append({"line": lineno, "name": m.group("name"),
                                   "note": m.group("note")})
    class_lines = {c["line"] for c in classes} | {c["line"] for c in shared_classes}
    for lineno, line in enumerate(keep_lines, 1):
        if lineno in class_lines:
            continue
        kind = None
        m = TLS_VAR_RE.match(line)
        if m:
            kind = "thread_local"
        else:
            m = STATIC_VAR_RE.match(line)
            if m:
                kind = "static"
            else:
                m = NS_GLOBAL_RE.match(line)
                if m:
                    kind = "global"
        if not kind:
            continue
        annot = annot_by_line.get(lineno) or annot_by_line.get(lineno - 1)
        entries.append({"line": lineno, "name": m.group("name"), "kind": kind,
                        "annot": annot})
    result = {"annotations": annotations, "classes": classes,
              "shared_classes": shared_classes, "entries": entries}
    _HARVEST_CACHE[path] = result
    return result


# --------------------------------------------------------------------------
# Call-graph harvesting (v4).  A deliberately line-based function model:
# definitions are found by matching `Name(` / `Class::Name(` with a brace
# body, in-class methods are attributed through class body regions, and
# call sites link to *every* function of the called name in the TU's
# include closure — a sound over-approximation for SL013's escape walk
# (virtual dispatch and function pointers stay out of scope; see
# docs/STATIC_ANALYSIS.md for the limitation list).  All of it runs on
# the comment/string-stripped view so braces in literals cannot skew the
# region math.

# Identifiers that look like calls but are control flow / operators.
_NOT_A_FUNCTION = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "new", "delete", "operator",
    "throw", "case", "do", "else", "template", "typename", "typeid",
    "assert", "defined", "alignas", "co_await", "co_return", "co_yield",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "constexpr", "requires", "concept",
    "SIM_SHARD_DOMAIN", "SIM_SHARD_SHARED",
))

FUNC_DEF_RE = re.compile(
    r"(?:(?P<cls>[A-Za-z_]\w*)\s*::\s*)?(?P<name>~?[A-Za-z_]\w*)\s*\(")
CLASS_ANY_RE = re.compile(
    r"\b(?:class|struct)\s+(?:SIM_SHARD_\w+\s*\([^)]*\)\s+)?(?P<name>[A-Za-z_]\w*)")
CALL_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

_FUNC_CACHE = {}


def _match_paren(joined: str, open_idx: int):
    """Index just past the ')' matching the '(' at open_idx (len() if
    unbalanced)."""
    depth = 0
    for i in range(open_idx, len(joined)):
        c = joined[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(joined)


def _class_regions(joined: str):
    """[(start_line, end_line, class_name)] for every class/struct with a
    body defined in `joined` (stripped view)."""
    regions = []
    for m in CLASS_ANY_RE.finditer(joined):
        body = _find_body_open(joined, m.end())
        if body < 0:
            continue
        end = _brace_regions(joined, body)
        regions.append((joined.count("\n", 0, body) + 1,
                        joined.count("\n", 0, end) + 1, m.group("name")))
    return regions


def harvest_functions(path: str):
    """Function definitions of one file (stripped view): a list of
    {name, cls, line, body_start, body_end, calls} where calls is
    [(callee_name, lineno, on_passage_line)].  `cls` comes from the
    `Class::` prefix or, for in-class bodies, the innermost enclosing
    class region."""
    cached = _FUNC_CACHE.get(path)
    if cached is not None:
        return cached
    lines, _, _ = _preprocessed(path)
    joined = "\n".join(lines)
    regions = _class_regions(joined)
    funcs = []
    for m in FUNC_DEF_RE.finditer(joined):
        name = m.group("name")
        if name.lstrip("~") in _NOT_A_FUNCTION or name.lstrip("~") in ("", "_"):
            continue
        prev = joined[m.start() - 1] if m.start() > 0 else ""
        if prev in ".>":  # member call `obj.name(` / `obj->name(`
            continue
        if prev == ":" and not m.group("cls"):  # qualified call `ns::name(`
            continue
        # Ctor member-initializers (`Foo() : a_(x), b_(y) {`) would be
        # harvested as functions and shadow the real ctor in the
        # innermost-enclosing-function map.  They follow a ',' or a ':'
        # that itself follows the ctor's ')' — an access specifier's ':'
        # (`public:`) follows an identifier instead, so inline methods
        # survive this filter.
        j = m.start() - 1
        while j >= 0 and joined[j] in " \t\n":
            j -= 1
        if j >= 0 and joined[j] == ",":
            continue
        if j >= 0 and joined[j] == ":" and (j == 0 or joined[j - 1] != ":"):
            k = j - 1
            while k >= 0 and joined[k] in " \t\n":
                k -= 1
            if k >= 0 and joined[k] == ")":
                continue
        args_open = joined.find("(", m.end() - 1)
        args_end = _match_paren(joined, args_open)
        # Between the arg list and the body only cv/ref qualifiers, ctor
        # init lists, and exception/override specifiers may appear.  A
        # ';' means declaration; an '=' means default argument splice,
        # `= default/delete/0`, or an initializer — none are bodies.
        body = -1
        for i in range(args_end, len(joined)):
            c = joined[i]
            if c == "{":
                body = i
                break
            if c in ";=":
                break
        if body < 0:
            continue
        end = _brace_regions(joined, body)
        def_line = joined.count("\n", 0, m.start()) + 1
        body_start = joined.count("\n", 0, body) + 1
        body_end = joined.count("\n", 0, end) + 1
        cls = m.group("cls")
        if cls is None:
            for start, rend, rname in regions:
                if start <= def_line <= rend:
                    cls = rname  # innermost region wins (later = inner)
        funcs.append({"name": name, "cls": cls, "line": def_line,
                      "body_start": body_start, "body_end": body_end})
    # Call extraction per definition (body lines only, passage lines
    # marked so SL013 can treat event-queue hops as sanctioned).  A
    # definition whose header shares its body's first line would count
    # its own name as a call (`void kick(...) {`), turning every method
    # into a self-loop that re-attributes its direct writes — skip the
    # match that sits on a definition line of the same name.
    def_at = {(f["name"].lstrip("~"), f["line"]) for f in funcs}
    for f in funcs:
        calls = []
        for lineno in range(f["body_start"], min(f["body_end"], len(lines)) + 1):
            line = lines[lineno - 1]
            passage = bool(EVENT_QUEUE_CALL_RE.search(line))
            for cm in CALL_NAME_RE.finditer(line):
                callee = cm.group(1)
                if callee in _NOT_A_FUNCTION:
                    continue
                if (callee, lineno) in def_at:
                    continue
                calls.append((callee, lineno, passage))
        f["calls"] = calls
    _FUNC_CACHE[path] = funcs
    return funcs


def closure_function_index(graph: IncludeGraph, path: str):
    """name -> [(path, func_record)] over the TU's include closure."""
    index = {}
    for dep in sorted(graph.closure(path)):
        for f in harvest_functions(dep):
            index.setdefault(f["name"].lstrip("~"), []).append((dep, f))
    return index


_WRITE_RE_CACHE = {}


def _write_re(name: str):
    """A line-level mutation pattern for symbol `name`: assignment
    (plain or compound), increment/decrement, or a member-function call
    on it (conservatively treated as mutating)."""
    cached = _WRITE_RE_CACHE.get(name)
    if cached is None:
        n = re.escape(name)
        cached = re.compile(
            r"(?:\+\+|--)\s*" + n + r"\b|"
            r"\b" + n + r"\s*(?:\+\+|--|(?:[-+*/%&|^]|<<|>>)?=(?!=)|"
            r"\.\s*\w+\s*\(|->\s*\w+\s*\()")
        _WRITE_RE_CACHE[name] = cached
    return cached


def _function_writes(path: str, func, targets):
    """Names from `targets` that `func`'s body mutates, with the line."""
    lines, _, _ = _preprocessed(path)
    hits = []
    for lineno in range(func["body_start"], min(func["body_end"], len(lines)) + 1):
        line = lines[lineno - 1]
        for name in targets:
            if _write_re(name).search(line):
                hits.append((name, lineno))
    return hits


def closure_shard_maps(graph: IncludeGraph, path: str):
    """Class-name -> domain and global-name -> domain maps over the TU's
    include closure (shared classes/entries tracked separately)."""
    class_domains = {}
    shared_types = set()
    entry_domains = {}
    shared_entries = set()
    for dep in graph.closure(path):
        h = harvest_shard(dep)
        for c in h["classes"]:
            class_domains[c["name"]] = c["domain"]
        for c in h["shared_classes"]:
            shared_types.add(c["name"])
        for e in h["entries"]:
            if e["annot"] and e["annot"][0] == "DOMAIN" and e["annot"][1]:
                entry_domains[e["name"]] = e["annot"][1]
            elif e["annot"] and e["annot"][0] == "SHARED":
                shared_entries.add(e["name"])
    return class_domains, shared_types, entry_domains, shared_entries


# SL015: the `via` grammar inside a SIM_SHARD_SHARED note.  Names are
# functions or classes (a class name covers all its methods), separated
# by "and", commas, or slashes, and the clause always ends in "only" so
# prose mentioning "via the event queue" never parses as a clause.
VIA_RE = re.compile(
    r"\bvia\s+([A-Za-z_][\w:]*(?:\s*(?:,|/|\band\b)\s*[A-Za-z_][\w:]*)*)\s+only\b")


def _parse_via(note: str):
    m = VIA_RE.search(note or "")
    if not m:
        return None
    return {n for n in re.split(r"\s*(?:,|/|\band\b)\s*", m.group(1)) if n}


def closure_shared_details(graph: IncludeGraph, path: str):
    """name -> [detail] for every SIM_SHARD_SHARED variable in the TU's
    include closure, where detail carries the declaring file/line, the
    parsed via-set (None when the note has no clause), and whether the
    entry is a function-local static (implicitly confined by the
    language, so SL015 never needs to police it)."""
    details = {}
    for dep in sorted(graph.closure(path)):
        funcs = None
        for e in harvest_shard(dep)["entries"]:
            if not (e["annot"] and e["annot"][0] == "SHARED"):
                continue
            if funcs is None:
                funcs = harvest_functions(dep)
            local = e["kind"] == "static" and any(
                f["body_start"] <= e["line"] <= f["body_end"] for f in funcs)
            details.setdefault(e["name"], []).append({
                "file": dep, "line": e["line"], "kind": e["kind"],
                "note": e["annot"][1] or "",
                "via": _parse_via(e["annot"][1] or ""),
                "local": local,
            })
    return details


def _brace_regions(joined: str, open_idx: int):
    """Given the index of a '{', return the index just past its matching
    '}' (or len(joined) if unbalanced)."""
    depth = 0
    for i in range(open_idx, len(joined)):
        c = joined[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(joined)


def _find_body_open(joined: str, start: int):
    """First '{' at or after `start`, unless a ';' (declaration) comes
    first; returns -1 when there is no body."""
    for i in range(start, len(joined)):
        if joined[i] == "{":
            return i
        if joined[i] == ";":
            return -1
    return -1


def shard_contexts(joined: str, class_domains):
    """Regions of `joined` (keep-strings view) that execute in a declared
    shard domain: bodies of domain-annotated classes defined here, and
    bodies of out-of-class method definitions of annotated classes.
    Returns [(start_line, end_line, domain, kind)] with kind in
    {"class", "method"}; inner regions come later so a linear scan can
    let the innermost context win."""
    contexts = []
    for m in CLASS_DOMAIN_RE.finditer(joined):
        domain = m.group("domain")
        body = _find_body_open(joined, m.end())
        if body < 0:
            continue
        end = _brace_regions(joined, body)
        start_line = joined.count("\n", 0, body) + 1
        end_line = joined.count("\n", 0, end) + 1
        contexts.append((start_line, end_line, domain, "class"))
    for m in METHOD_DEF_RE.finditer(joined):
        domain = class_domains.get(m.group("cls"))
        if domain is None:
            continue
        body = _find_body_open(joined, m.end())
        if body < 0:
            continue
        end = _brace_regions(joined, body)
        start_line = joined.count("\n", 0, body) + 1
        end_line = joined.count("\n", 0, end) + 1
        contexts.append((start_line, end_line, domain, "method"))
    contexts.sort(key=lambda c: (c[0], -c[1]))
    return contexts


def run_shard_rules(path: str, keep_lines, graph: IncludeGraph):
    """SL009-SL012 over one file."""
    findings = []
    harvest = harvest_shard(path)

    # SL012: annotation hygiene first — a malformed annotation must not
    # silently satisfy SL009.
    for lineno, kind, value in harvest["annotations"]:
        if kind == "DOMAIN":
            if value is None:
                findings.append((lineno, "SL012",
                                 "SIM_SHARD_DOMAIN needs a string-literal domain "
                                 "name (the matcher reads it textually)"))
            elif value not in SHARD_DOMAINS:
                findings.append((lineno, "SL012",
                                 f"unknown shard domain \"{value}\"; vocabulary: "
                                 + ", ".join(SHARD_DOMAINS)))
        else:  # SHARED
            if value is None or len(value.strip()) < 8:
                findings.append((lineno, "SL012",
                                 "SIM_SHARD_SHARED needs a synchronisation note "
                                 "saying how cross-shard access is made safe"))

    # SL009: unannotated inventory entries.
    for entry in harvest["entries"]:
        if entry["annot"] is None:
            findings.append((entry["line"], "SL009",
                             f"mutable {entry['kind']} `{entry['name']}` has no "
                             "shard annotation; declare SIM_SHARD_DOMAIN(...) or "
                             "SIM_SHARD_SHARED(\"how access is synchronised\") "
                             "on or above this line"))

    # SL010: cross-domain access.
    class_domains, shared_types, entry_domains, shared_entries = \
        closure_shard_maps(graph, path)
    joined = "\n".join(keep_lines)
    contexts = shard_contexts(joined, class_domains)
    # Innermost-context map per line (shared by SL010 and SL014).
    line_ctx = {}
    for start, end, domain, kind in contexts:
        for ln in range(start, end + 1):
            line_ctx[ln] = (domain, kind)
    if contexts:
        ranked_types = {name: dom for name, dom in class_domains.items()
                        if dom in DOMAIN_RANK and name not in QUEUE_PASSAGE_TYPES}
        type_word_res = {name: re.compile(r"\b" + re.escape(name) + r"\b")
                         for name in ranked_types}
        entry_word_res = {name: re.compile(r"\b" + re.escape(name) + r"\b")
                          for name in entry_domains}
        entry_decl_lines = {e["line"] for e in harvest["entries"]}
        for lineno, line in enumerate(keep_lines, 1):
            ctx = line_ctx.get(lineno)
            if ctx is None:
                continue
            domain, kind = ctx
            # (a) Structural: a member declaration embedding a coarser
            # domain's type.  Member declarations are paren-free and end
            # with ';'; parameters and calls carry parentheses.
            if (kind == "class" and domain in DOMAIN_RANK
                    and "(" not in line and line.rstrip().endswith(";")
                    and "SIM_SHARD_" not in line):
                for name, member_domain in ranked_types.items():
                    if DOMAIN_RANK[member_domain] <= DOMAIN_RANK[domain]:
                        continue
                    if type_word_res[name].search(line):
                        findings.append((lineno, "SL010",
                                         f"`{name}` is {member_domain}-domain state "
                                         f"embedded in a {domain}-domain class; reach "
                                         "coarser domains through the event queue "
                                         "(Simulator::at/after) or annotate the member "
                                         "SIM_SHARD_SHARED with its synchronisation"))
                        break
            # (b) A domain context naming another domain's annotated
            # global without an event-queue call on the same line.
            if domain in DOMAIN_RANK and lineno not in entry_decl_lines:
                for name, entry_domain in entry_domains.items():
                    if entry_domain == domain or entry_domain not in DOMAIN_RANK:
                        continue
                    if name in shared_entries:
                        continue
                    if entry_word_res[name].search(line) and \
                            not EVENT_QUEUE_CALL_RE.search(line):
                        findings.append((lineno, "SL010",
                                         f"`{name}` belongs to the {entry_domain} "
                                         f"domain but is touched from {domain}-domain "
                                         "code; route the access through the event "
                                         "queue or annotate it SIM_SHARD_SHARED"))

    stripped_lines, _, _ = _preprocessed(path)
    stripped_joined = "\n".join(stripped_lines)

    # SL013: call-graph shard escape.  Walk the over-approximated call
    # graph from every method of a ranked-domain class; a write to a
    # different non-ancestor domain's annotated global anywhere downstream
    # (depth >= 1 — direct touches are SL010's job) is an escape, unless
    # the hop happened on an event-queue passage line.  Coarser domains
    # are this domain's ancestors on the containment chain and stay
    # sanctioned, mirroring the dynamic guard's same-lineage rule.
    ranked_globals = {g: d for g, d in entry_domains.items()
                      if d in DOMAIN_RANK and g not in shared_entries}
    local_funcs = harvest_functions(path)
    if ranked_globals and local_funcs:
        func_index = None  # built lazily: most TUs have no ranked methods
        for f in local_funcs:
            domain = class_domains.get(f["cls"]) if f["cls"] else None
            if domain not in DOMAIN_RANK or \
                    DOMAIN_RANK[domain] > DOMAIN_RANK["channel"]:
                continue
            targets = {g: d for g, d in ranked_globals.items()
                       if d != domain and DOMAIN_RANK[d] <= DOMAIN_RANK[domain]}
            if not targets:
                continue
            if func_index is None:
                func_index = closure_function_index(graph, path)
            queue = [(callee, 1) for callee, _, passage in f["calls"]
                     if not passage]
            visited = set()
            reported = set()
            while queue:
                callee, depth = queue.pop(0)
                for dpath, rec in func_index.get(callee.lstrip("~"), []):
                    fid = (dpath, rec["line"])
                    if fid in visited:
                        continue
                    visited.add(fid)
                    for g, wline in _function_writes(dpath, rec, targets):
                        if g in reported:
                            continue
                        reported.add(g)
                        wrel = os.path.relpath(dpath, REPO_ROOT)
                        findings.append((f["line"], "SL013",
                                         f"`{f['cls']}::{f['name']}` "
                                         f"({domain}-domain) transitively "
                                         f"reaches a write to `{g}` "
                                         f"({targets[g]}-domain) via "
                                         f"`{rec['name']}` ({wrel}:{wline}); "
                                         "cross-domain mutation must route "
                                         "through the event queue "
                                         "(Simulator::at/after)"))
                    if depth < 8:
                        queue.extend((c, depth + 1) for c, _, passage
                                     in rec["calls"] if not passage)

    # SL014: handler purity.  A lambda handed to at/after/schedule runs
    # as an event on the target shard; its text naming a shard-owned
    # global of a foreign ranked domain (captured or reached directly) is
    # a cross-shard touch the queue was supposed to prevent.
    if ranked_globals:
        shard_owned = {g: d for g, d in ranked_globals.items()
                       if DOMAIN_RANK[d] <= DOMAIN_RANK["channel"]}
        word_res = {g: re.compile(r"\b" + re.escape(g) + r"\b")
                    for g in shard_owned}
        for m in EVENT_QUEUE_CALL_RE.finditer(stripped_joined):
            args_open = stripped_joined.find("(", m.end() - 1)
            args_end = _match_paren(stripped_joined, args_open)
            region = stripped_joined[args_open:args_end]
            call_line = stripped_joined.count("\n", 0, m.start()) + 1
            ctx = line_ctx.get(call_line)
            for lm in LAMBDA_RE.finditer(region):
                body_open = lm.end() - 1
                body_end = _brace_regions(region, body_open)
                lam_text = region[lm.start():body_end]
                lam_line = (call_line +
                            region.count("\n", 0, lm.start()))
                for g, d in shard_owned.items():
                    if ctx is not None and ctx[0] == d:
                        continue  # continuation on its own shard
                    if word_res[g].search(lam_text):
                        findings.append((lam_line, "SL014",
                                         f"event handler captures or reaches "
                                         f"`{g}` ({d}-domain); handlers must "
                                         "carry only their own shard's state "
                                         "— pass a value in, or schedule onto "
                                         f"the {d} domain instead"))

    # SL015: shared-state sync sets.  Function-local statics are confined
    # by the language; everything else must be reached inside its
    # declared via-set, or (clause-less notes) inside its declaring file.
    shared_details = closure_shared_details(graph, path)
    if shared_details:
        # Innermost enclosing function per line (smallest region wins).
        line_func = {}
        for f in sorted(local_funcs,
                        key=lambda f: f["body_end"] - f["line"], reverse=True):
            for ln in range(f["line"], f["body_end"] + 1):
                line_func[ln] = f
        for name, details in sorted(shared_details.items()):
            if all(d["local"] for d in details):
                continue
            word = re.compile(r"\b" + re.escape(name) + r"\b")
            decl_here = {d["line"] for d in details if d["file"] == path}
            for lineno, line in enumerate(stripped_lines, 1):
                if lineno in decl_here or line.lstrip().startswith("#"):
                    continue
                if not word.search(line):
                    continue
                allowed = False
                via_union = set()
                for d in details:
                    if d["local"]:
                        continue
                    if d["via"]:
                        via_union |= d["via"]
                        f = line_func.get(lineno)
                        if f is not None and (
                                f["name"].lstrip("~") in d["via"] or
                                (f["cls"] and f["cls"] in d["via"])):
                            allowed = True
                            break
                        if f is None and d["file"] == path:
                            # Namespace-scope text in the declaring file
                            # (redeclarations, accessor glue) is
                            # decl-adjacent, not an access.
                            allowed = True
                            break
                    elif d["file"] == path:
                        allowed = True
                        break
                if allowed:
                    continue
                if via_union:
                    allowed_set = "/".join(sorted(via_union))
                    findings.append((lineno, "SL015",
                                     f"`{name}` is SIM_SHARD_SHARED with "
                                     f"access confined via {allowed_set} "
                                     "only; this reference is outside that "
                                     "set — route it through the declared "
                                     "accessors or extend the via clause"))
                else:
                    decl_rel = os.path.relpath(details[0]["file"], REPO_ROOT)
                    findings.append((lineno, "SL015",
                                     f"`{name}` is SIM_SHARD_SHARED "
                                     f"(declared in {decl_rel}) but its note "
                                     "has no `via ... only` clause, so it is "
                                     "confined to its declaring file; add a "
                                     "via clause naming the sanctioned "
                                     "accessor functions/classes"))
    return findings


def run_matcher_rules(path: str, lines, keep_lines, graph: IncludeGraph,
                      closure_texts):
    findings = []
    joined = "\n".join(lines)

    for lineno, line in enumerate(lines, 1):
        for pattern, what in WALL_CLOCK_PATTERNS:
            if pattern.search(line):
                findings.append((lineno, "SL001",
                                 f"{what}: wall-clock source in simulation code; "
                                 "use the simulated clock (Time) instead"))
                break
        for pattern, what in AMBIENT_RNG_PATTERNS:
            if pattern.search(line):
                findings.append((lineno, "SL002",
                                 f"{what}: ambient randomness; thread a seeded "
                                 "nvmooc::Rng through instead"))
                break
        for pattern, what in NON_REENTRANT_PATTERNS:
            if pattern.search(line):
                findings.append((lineno, "SL011",
                                 f"{what}; non-reentrant state races once the "
                                 "event loop shards — use a reentrant or "
                                 "caller-owned alternative"))
                break
        if DEFAULT_SEEDED_RE.search(line):
            findings.append((lineno, "SL005",
                             "std <random> engine without an explicit seed; "
                             "pass a seed so replay is auditable"))
        if LIFECYCLE_DISCARD_RE.search(line):
            findings.append((lineno, "SL006",
                             "request_issued() result discarded; the returned "
                             "id is the only handle later lifecycle stages can "
                             "use, so this request can never complete"))
        if UNIT_NARROW_RE.search(line):
            findings.append((lineno, "SL008",
                             ".ps()/.value() narrowed below 64 bits; cast to "
                             "double or (u)int64_t, or keep the strong type"))

    # SL006(a): stage hooks reported in a TU that never issues a request.
    # The check is per-TU because the issue and the stage calls legally
    # live in different functions (the engine threads the id through).
    if not LIFECYCLE_ISSUE_RE.search(joined):
        for lineno, line in enumerate(lines, 1):
            m = LIFECYCLE_STAGE_RE.search(line)
            if m:
                findings.append((lineno, "SL006",
                                 f"{m.group(1)}() reported but request_issued() "
                                 "never appears in this translation unit; the "
                                 "auditor will see stages with no issue"))

    # SL006(b): same discipline for the causal profiler — request edges
    # recorded in a TU that never mints an id with request_begin() can
    # only reference phantom requests, so the critical-path walk would
    # drop them (or worse, attach them to someone else's request).
    if not PROFILE_BEGIN_RE.search(joined):
        for lineno, line in enumerate(lines, 1):
            m = PROFILE_EDGE_RE.search(line)
            if m:
                findings.append((lineno, "SL006",
                                 f"{m.group(1)}() recorded but request_begin() "
                                 "never appears in this translation unit; the "
                                 "profiler will see edges with no request"))

    # SL007: headers only.  The attribute may sit on the declaration line
    # or the line above (clang-format splits long signatures there).
    if path.endswith((".hpp", ".h")):
        for lineno, line in enumerate(lines, 1):
            m = NODISCARD_DECL_RE.search(line)
            if m is None or m.group(2) == "operator":
                continue
            prev = lines[lineno - 2] if lineno >= 2 else ""
            if NODISCARD_ATTR_RE.search(line) or NODISCARD_ATTR_RE.search(prev):
                continue
            findings.append((lineno, "SL007",
                             f"`{m.group(2)}` returns {m.group(1)} by value "
                             "without [[nodiscard]]; dropping a unit-typed "
                             "result is always a bug"))

    # SL004 scans the joined text so a Time{...} construct split across
    # lines (clang-format loves these) is still seen whole; [^{}]* keeps
    # the lookahead inside the braced initializer.
    for m in FLOAT_TO_TIME_RE.finditer(joined):
        lineno = joined.count("\n", 0, m.start()) + 1
        findings.append((lineno, "SL004",
                         "floating-point expression constructs Time directly; "
                         "use from_seconds() (single documented rounding site)"))

    # SL003: iteration over unordered containers.
    #  a) the sequence expression itself names an unordered type;
    #  b) the sequence is an identifier declared as an unordered container
    #     somewhere in this TU's in-project include closure — and nowhere
    #     declared as an ordered one (ambiguous names are skipped so a
    #     member like `erase_counts_` that is ordered in one class and
    #     unordered in another never yields a false positive).
    def container_kinds(name: str):
        unordered = ordered = False
        for text in closure_texts:
            for m in UNORDERED_DECL_RE.finditer(text):
                if m.group(1) == name:
                    unordered = True
            for m in ORDERED_DECL_RE.finditer(text):
                if m.group(1) == name:
                    ordered = True
        return unordered, ordered

    for m in RANGE_FOR_RE.finditer(joined):
        seq = m.group(2)
        lineno = joined.count("\n", 0, m.start()) + 1
        if re.search(r"unordered_(?:map|set|multimap|multiset)", seq):
            findings.append((lineno, "SL003",
                             "range-for over an unordered container; iteration "
                             "order is not replay-stable"))
            continue
        name = _sequence_name(seq)
        if not name:
            continue
        unordered, ordered = container_kinds(name)
        if unordered and not ordered:
            findings.append((lineno, "SL003",
                             f"range-for over `{name}`, declared as an unordered "
                             "container; iteration order is not replay-stable"))

    for m in ITER_CALL_RE.finditer(joined):
        name = _sequence_name(m.group(1))
        if not name:
            continue
        lineno = joined.count("\n", 0, m.start()) + 1
        unordered, ordered = container_kinds(name)
        if unordered and not ordered:
            findings.append((lineno, "SL003",
                             f"iterator walk over `{name}`, declared as an "
                             "unordered container; order is not replay-stable"))

    findings.extend(run_shard_rules(path, keep_lines, graph))
    return findings


# --------------------------------------------------------------------------
# libclang engine (optional; AST-accurate).

def run_libclang_rules(path: str, compile_args):
    import clang.cindex as ci  # noqa: deferred import; availability gated by caller

    index = ci.Index.create()
    tu = index.parse(path, args=compile_args)
    findings = []

    def type_is_unordered(t) -> bool:
        spelling = t.get_canonical().spelling
        return "unordered_map" in spelling or "unordered_set" in spelling

    for cursor in tu.cursor.walk_preorder():
        if cursor.location.file is None or cursor.location.file.name != path:
            continue
        lineno = cursor.location.line
        if cursor.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if children and type_is_unordered(children[-2].type):
                findings.append((lineno, "SL003",
                                 "range-for over an unordered container (AST)"))
        elif cursor.kind == ci.CursorKind.DECL_REF_EXPR:
            if cursor.spelling in ("rand", "srand", "gettimeofday", "clock_gettime"):
                rule = "SL002" if "rand" in cursor.spelling else "SL001"
                findings.append((lineno, rule, f"call to {cursor.spelling} (AST)"))
        elif cursor.kind == ci.CursorKind.NAMESPACE_REF and cursor.spelling == "chrono":
            findings.append((lineno, "SL001", "std::chrono (AST)"))
        elif cursor.kind == ci.CursorKind.VAR_DECL:
            spelling = cursor.type.get_canonical().spelling
            if "random_device" in spelling:
                findings.append((lineno, "SL002", "std::random_device (AST)"))
    return findings


# --------------------------------------------------------------------------
# Configuration and driver.

def load_conf(conf_path: str):
    """Allowlist: `<rule-id-or-name> <path glob relative to repo root>`."""
    allow = []
    if not os.path.isfile(conf_path):
        return allow
    with open(conf_path, encoding="utf-8") as f:
        for raw in f:
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                print(f"simlint: bad conf line ignored: {stripped!r}", file=sys.stderr)
                continue
            rule, glob = parts
            rule_id = rule if rule in RULE_NAMES else NAME_TO_ID.get(rule)
            if rule_id is None and rule != "*":
                print(f"simlint: unknown rule in conf: {rule!r}", file=sys.stderr)
                continue
            allow.append((rule_id or "*", glob))
    return allow


def conf_match(allowlist, rule: str, rel_path: str):
    """Index of the first allowlist entry exempting (rule, path), or None.
    The index is what the staleness audit tracks: an entry whose index is
    never returned over a full tree scan suppressed nothing."""
    for i, (allowed_rule, glob) in enumerate(allowlist):
        if allowed_rule not in ("*", rule):
            continue
        if fnmatch.fnmatch(rel_path, glob) or fnmatch.fnmatch(rel_path, glob.rstrip("/") + "/*"):
            return i
    return None


def conf_allows(allowlist, rule: str, rel_path: str) -> bool:
    return conf_match(allowlist, rule, rel_path) is not None


def discover_files(compile_commands: str, roots):
    """TU sources from compile_commands.json plus all project headers under
    the given roots; falls back to a plain glob when the database is
    missing (e.g. tree not configured yet).  The simlint reject fixtures
    are deliberately-violating inputs for --self-test, never tree
    findings, so they are excluded even when a root contains them."""
    files = set()
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                src = os.path.normpath(os.path.join(entry.get("directory", ""), entry["file"]))
                if any(src.startswith(os.path.abspath(r) + os.sep) for r in roots):
                    files.add(src)
    for root in roots:
        for dirpath, _, names in os.walk(root):
            for name in names:
                if name.endswith((".hpp", ".h", ".cpp", ".cc")):
                    files.add(os.path.join(dirpath, name))
    fixture_prefix = FIXTURE_DIR + os.sep
    return sorted(f for f in files if not f.startswith(fixture_prefix))


def lint_file(path: str, graph: IncludeGraph, engine: str, allowlist, src_root: str):
    """Returns (findings, stale_inline, used_conf): the surviving
    findings, the inline allow() annotations that suppressed nothing
    (lineno, rules), and the indices of allowlist entries that fired."""
    lines, inline_allows, keep_lines = _preprocessed(path)
    if not lines and not keep_lines:
        print(f"simlint: cannot read {path}", file=sys.stderr)
        return [], [], set()

    closure_texts = []
    for dep in graph.closure(path):
        dep_lines, _, _ = _preprocessed(dep)
        if dep_lines:
            closure_texts.append("\n".join(dep_lines))

    raw = run_matcher_rules(path, lines, keep_lines, graph, closure_texts)
    if engine == "libclang":
        try:
            raw += run_libclang_rules(path, ["-std=c++20", f"-I{src_root}"])
        except ImportError:
            print("simlint: libclang bindings unavailable; matcher results only",
                  file=sys.stderr)

    rel = os.path.relpath(path, REPO_ROOT)
    findings = []
    seen = set()
    used_inline = set()
    used_conf = set()
    for lineno, rule, message in raw:
        key = (lineno, rule)
        if key in seen:
            continue
        seen.add(key)
        suppressed = inline_allows.get(lineno, set()) | inline_allows.get(lineno - 1, set())
        if rule in suppressed or "*" in suppressed:
            for ln in (lineno, lineno - 1):
                s = inline_allows.get(ln, set())
                if rule in s or "*" in s:
                    used_inline.add(ln)
            continue
        idx = conf_match(allowlist, rule, rel)
        if idx is not None:
            used_conf.add(idx)
            continue
        findings.append(Finding(path, lineno, rule, message))
    stale_inline = [(ln, tuple(sorted(rules)))
                    for ln, rules in sorted(inline_allows.items())
                    if rules and ln not in used_inline]
    return findings, stale_inline, used_conf


# --------------------------------------------------------------------------
# Shard report: the machine-readable inventory the parallel scheduler
# consumes.  Regenerated with --shard-report, gated with --shard-check.
# Line numbers are deliberately omitted so unrelated edits do not churn
# the checked-in contract; symbols are keyed by file and kind.

SHARD_REPORT_SCHEMA = "nvmooc-shard-report-v2"
SHARD_REPORT_SCHEMA_V1 = "nvmooc-shard-report-v1"


def compute_access_kinds(files, inventory):
    """Classify each inventoried symbol as 'mutated-in-handler' (written by
    some function reachable from a domain-annotated class method via the
    by-name call graph) or 'read-mostly' (everything else).  inventory is
    a set of symbol names; returns {name: kind}."""
    class_domains = {}
    index = {}
    all_funcs = []
    for path in files:
        h = harvest_shard(path)
        for c in h["classes"]:
            if c["domain"] in SHARD_DOMAINS:
                class_domains[c["name"]] = c["domain"]
        for func in harvest_functions(path):
            index.setdefault(func["name"].lstrip("~"), []).append((path, func))
            all_funcs.append((path, func))
    queue = [(p, f) for (p, f) in all_funcs if f["cls"] in class_domains]
    visited = {(p, f["line"]) for p, f in queue}
    reachable = list(queue)
    while queue:
        path, func = queue.pop()
        for callee, _lineno, _passage in func["calls"]:
            for dest_path, rec in index.get(callee.lstrip("~"), []):
                fid = (dest_path, rec["line"])
                if fid not in visited:
                    visited.add(fid)
                    queue.append((dest_path, rec))
                    reachable.append((dest_path, rec))
    kinds = {name: "read-mostly" for name in inventory}
    targets = set(inventory)
    for path, func in reachable:
        for name, _lineno in _function_writes(path, func, targets):
            kinds[name] = "mutated-in-handler"
    return kinds


def build_shard_report(files):
    domains = {}
    shared = []
    unannotated = []
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT)
        h = harvest_shard(path)
        for c in h["classes"]:
            if c["domain"] in SHARD_DOMAINS:
                domains.setdefault(c["domain"], {}).setdefault(rel, []).append(
                    "class:" + c["name"])
        for c in h["shared_classes"]:
            shared.append({"file": rel, "symbol": c["name"], "kind": "class",
                           "note": c["note"]})
        for e in h["entries"]:
            annot = e["annot"]
            symbol = f"{e['kind']}:{e['name']}"
            if annot and annot[0] == "DOMAIN" and annot[1] in SHARD_DOMAINS:
                domains.setdefault(annot[1], {}).setdefault(rel, []).append(symbol)
            elif annot and annot[0] == "SHARED":
                shared.append({"file": rel, "symbol": e["name"],
                               "kind": e["kind"], "note": annot[1] or ""})
            else:
                unannotated.append({"file": rel, "symbol": e["name"],
                                    "kind": e["kind"]})
    for domain in domains:
        for rel in domains[domain]:
            domains[domain][rel] = sorted(set(domains[domain][rel]))
    shared.sort(key=lambda s: (s["file"], s["symbol"]))
    unannotated.sort(key=lambda s: (s["file"], s["symbol"]))
    # v2: per-symbol access classification over the cross-TU call graph.
    # Shared entries are untouched relative to v1, so a v1 consumer can
    # keep working by dropping this section (see --shard-check compat).
    inventory = {e["symbol"] for e in shared if e["kind"] != "class"}
    inventory |= {e["symbol"] for e in unannotated}
    kinds = compute_access_kinds(files, inventory)
    state_access = sorted(
        ({"file": e["file"], "symbol": e["symbol"], "kind": e["kind"],
          "access_kind": kinds[e["symbol"]]}
         for e in shared + unannotated if e["kind"] != "class"),
        key=lambda s: (s["file"], s["symbol"]))
    return {
        "schema": SHARD_REPORT_SCHEMA,
        "domain_vocabulary": list(SHARD_DOMAINS),
        "domains": domains,
        "shared": shared,
        "unannotated": unannotated,
        "state_access": state_access,
    }


def downconvert_shard_report_v1(report):
    """v2 report -> the exact v1 shape (drop state_access, rename schema).
    Kept for one release so a pinned v1 SHARD_REPORT.json still gates."""
    compat = {k: v for k, v in report.items() if k != "state_access"}
    compat["schema"] = SHARD_REPORT_SCHEMA_V1
    return compat


def shard_report_json(report) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def diff_shard_reports(old, new):
    """Human-readable drift lines between two report dicts (empty = same)."""
    lines = []
    if old == new:
        return lines

    def flatten(report):
        flat = set()
        for domain, files in report.get("domains", {}).items():
            for rel, symbols in files.items():
                for symbol in symbols:
                    flat.add(f"domain={domain} {rel} {symbol}")
        for entry in report.get("shared", []):
            flat.add(f"shared {entry['file']} {entry['kind']}:{entry['symbol']}")
        for entry in report.get("unannotated", []):
            flat.add(f"unannotated {entry['file']} {entry['kind']}:{entry['symbol']}")
        for entry in report.get("state_access", []):
            flat.add(f"access {entry['file']} {entry['kind']}:{entry['symbol']} "
                     f"= {entry['access_kind']}")
        return flat

    old_flat, new_flat = flatten(old), flatten(new)
    for item in sorted(new_flat - old_flat):
        lines.append(f"  + {item}")
    for item in sorted(old_flat - new_flat):
        lines.append(f"  - {item}")
    if not lines:
        lines.append("  (note text or schema metadata changed)")
    return lines


# --------------------------------------------------------------------------
# Parallel scanning.  Workers are processes (the regex engine holds the
# GIL); each builds its own include-graph lazily and memoizes closures,
# and results are reassembled in input order so output is deterministic
# for any --jobs value.

_WORKER = {}


def _worker_init(src_root, allowlist, engine):
    _WORKER["graph"] = IncludeGraph(src_root)
    _WORKER["allowlist"] = allowlist
    _WORKER["engine"] = engine
    _WORKER["src_root"] = src_root


def _lint_one(path):
    findings, stale_inline, used_conf = lint_file(
        path, _WORKER["graph"], _WORKER["engine"],
        _WORKER["allowlist"], _WORKER["src_root"])
    return ([(f.path, f.line, f.rule, f.message) for f in findings],
            [(path, ln, rules) for ln, rules in stale_inline],
            sorted(used_conf))


def lint_tree(files, graph, engine, allowlist, src_root, jobs):
    """Lint every file, in parallel when jobs > 1.  Returns
    (findings, stale_inline, used_conf): Findings in deterministic
    (path, line) order regardless of worker count, the inline allow()
    annotations that suppressed nothing as (path, line, rules), and the
    set of allowlist indices that fired anywhere in the scan."""
    per_file = None
    if jobs > 1 and len(files) >= 4:
        try:
            import multiprocessing as mp
            ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
                else mp.get_context()
            with ctx.Pool(processes=min(jobs, len(files)),
                          initializer=_worker_init,
                          initargs=(src_root, allowlist, engine)) as pool:
                per_file = pool.map(_lint_one, files, chunksize=4)
        except (ImportError, OSError) as e:
            print(f"simlint: parallel scan unavailable ({e}); running serially",
                  file=sys.stderr)
            per_file = None
    if per_file is None:
        _worker_init(src_root, allowlist, engine)
        per_file = [_lint_one(path) for path in files]
    findings = [Finding(*tup) for tups, _, _ in per_file for tup in tups]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    stale_inline = sorted(rec for _, stale, _ in per_file for rec in stale)
    used_conf = {i for _, _, used in per_file for i in used}
    return findings, stale_inline, used_conf


# --------------------------------------------------------------------------
# Self-test: every fixture carries `// simlint-expect: SL00X` markers on
# its violating lines; the checker must report exactly those findings.

EXPECT_RE = re.compile(r"//\s*simlint-expect:\s*(SL\d{3}(?:\s*,\s*SL\d{3})*)")


def self_test() -> int:
    failures = 0
    fixtures = sorted(
        os.path.join(FIXTURE_DIR, f)
        for f in os.listdir(FIXTURE_DIR)
        if f.endswith((".cpp", ".hpp", ".h")))
    if not fixtures:
        print("simlint --self-test: no fixtures found", file=sys.stderr)
        return 2
    graph = IncludeGraph(FIXTURE_DIR)
    for path in fixtures:
        expected = set()
        expected_stale = set()
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                m = EXPECT_RE.search(line)
                if m:
                    for rule in re.split(r"\s*,\s*", m.group(1)):
                        expected.add((lineno, rule))
                if "simlint-expect-stale" in line:
                    expected_stale.add(lineno)
        file_findings, file_stale, _ = lint_file(path, graph, "matcher", [], FIXTURE_DIR)
        got = {(f.line, f.rule) for f in file_findings}
        got_stale = {ln for ln, _ in file_stale}
        name = os.path.basename(path)
        missing = expected - got
        spurious = got - expected
        if got_stale != expected_stale:
            failures += 1
            print(f"FAIL {name} (stale allows: expected lines "
                  f"{sorted(expected_stale)}, got {sorted(got_stale)})")
        if missing or spurious:
            failures += 1
            print(f"FAIL {name}")
            for lineno, rule in sorted(missing):
                print(f"  expected but not reported: line {lineno} {rule}")
            for lineno, rule in sorted(spurious):
                print(f"  reported but not expected: line {lineno} {rule}")
        else:
            label = f"{len(expected)} expected finding(s)" if expected else "clean"
            print(f"PASS {name} ({label})")
    # Conf-scope assertions: the checked-in allowlist must exempt exactly
    # the sanctioned wall-clock site and nothing that executes simulation
    # arithmetic. A conf edit that silently widens the wall-clock scope
    # (back to a whole directory, say) fails here before it lands.
    allowlist = load_conf(DEFAULT_CONF)
    scope_cases = [
        ("SL001", "src/common/wallclock.cpp", True),
        ("SL001", "src/common/stats.cpp", False),
        ("SL001", "src/obs/host_profiler.cpp", False),
        ("SL001", "src/obs/trace_recorder.cpp", False),
        ("SL001", "src/cluster/engine.cpp", False),
        ("SL001", "src/sim/simulator.cpp", False),
        ("SL001", "examples/ooc_eigensolver.cpp", False),
        ("SL004", "src/common/units.hpp", True),
        ("SL004", "src/cluster/engine.cpp", False),
        ("SL009", "src/sim/event_queue.hpp", False),
        ("SL010", "src/ssd/controller.hpp", False),
        ("SL011", "src/cluster/engine.cpp", False),
        ("SL012", "src/common/shard_domain.hpp", False),
    ]
    for rule, rel, want in scope_cases:
        got_allowed = conf_allows(allowlist, rule, rel)
        if got_allowed != want:
            failures += 1
            verb = "exempts" if got_allowed else "does not exempt"
            print(f"FAIL conf-scope: allowlist {verb} {rule} in {rel} "
                  f"(expected {'exempt' if want else 'reported'})")
        else:
            print(f"PASS conf-scope: {rule} {rel} "
                  f"({'exempt' if want else 'reported'})")
    # Shard-report smoke: the reject fixtures must aggregate into a
    # report that carries their domains, shared notes, and unannotated
    # strays — the same code path CI's drift gate runs over src/.
    report = build_shard_report(fixtures)
    compat = downconvert_shard_report_v1(report)
    report_cases = [
        (bool(report["unannotated"]), "unannotated strays from sl009 fixture"),
        (any(e["note"] for e in report["shared"]), "shared note round-trip"),
        ("channel" in report["domains"], "channel domain from sl010 fixture"),
        (report["schema"] == SHARD_REPORT_SCHEMA, "schema is v2"),
        (bool(report["state_access"]) and
         all(e["access_kind"] in ("read-mostly", "mutated-in-handler")
             for e in report["state_access"]),
         "state_access section with classified entries"),
        (any(e["access_kind"] == "mutated-in-handler"
             for e in report["state_access"]),
         "mutated-in-handler reachability from a domain method"),
        (compat["schema"] == SHARD_REPORT_SCHEMA_V1 and
         "state_access" not in compat and
         not diff_shard_reports(compat, downconvert_shard_report_v1(report)),
         "v1 down-convert round-trip"),
    ]
    for ok, what in report_cases:
        if not ok:
            failures += 1
            print(f"FAIL shard-report: missing {what}")
        else:
            print(f"PASS shard-report: {what}")
    if failures:
        print(f"simlint --self-test: {failures} fixture(s) failed")
        return 1
    print(f"simlint --self-test: all {len(fixtures)} fixtures pass")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--compile-commands",
                        default=os.path.join(REPO_ROOT, "build", "compile_commands.json"),
                        help="compilation database for TU discovery")
    parser.add_argument("--config", default=DEFAULT_CONF, help="allowlist file")
    parser.add_argument("--engine", choices=("auto", "matcher", "libclang"),
                        default="auto")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parallel worker processes (default: CPU count; "
                             "output order is deterministic either way)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="finding output format (json for machine consumers)")
    parser.add_argument("--shard-report", metavar="FILE",
                        help="write the shard-domain state inventory JSON")
    parser.add_argument("--shard-check", metavar="FILE",
                        help="fail on inventory drift against a checked-in report")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule against the checked-in fixtures")
    parser.add_argument("--allowlist-audit", action="store_true",
                        help="downgrade stale-allowlist findings from errors "
                             "to warnings (default: stale suppressions fail)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name in sorted(RULE_NAMES.items()):
            print(f"{rule_id}  {name}")
        return 0
    if args.self_test:
        return self_test()

    engine = args.engine
    if engine == "auto":
        try:
            import clang.cindex  # noqa: F401
            engine = "libclang"
        except ImportError:
            engine = "matcher"

    src_root = os.path.join(REPO_ROOT, "src")
    roots = []
    explicit_files = []
    for p in args.paths or [src_root]:
        p = os.path.abspath(p)
        if os.path.isdir(p):
            roots.append(p)
        elif os.path.isfile(p):
            explicit_files.append(p)
        else:
            print(f"simlint: no such path: {p}", file=sys.stderr)
            return 2

    allowlist = load_conf(args.config)
    graph = IncludeGraph(src_root)
    files = discover_files(args.compile_commands, roots) if roots else []
    files = sorted(set(files) | set(explicit_files))

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    all_findings, stale_inline, used_conf = lint_tree(
        files, graph, engine, allowlist, src_root, jobs)

    # Allowlist hygiene: an inline allow() that suppressed nothing, or a
    # conf entry that matched nothing, is a stale suppression — the code
    # it excused has moved or been fixed, and leaving it in place would
    # silently excuse a future regression at the same site.  Conf entries
    # are only audited on directory scans, and only when the scan actually
    # covered the entry's path: a single-file invocation (or a scan rooted
    # elsewhere, e.g. a src-only pass with an entry scoped to bench/) never
    # exercises entries outside its scope, which proves nothing about them.
    stale_msgs = []
    for path, lineno, rules in stale_inline:
        rel = os.path.relpath(path, REPO_ROOT)
        stale_msgs.append(f"{rel}:{lineno}: stale inline allow({', '.join(rules)}) "
                          "— it suppressed no finding in this scan")
    if roots:
        scanned_rel = [os.path.relpath(f, REPO_ROOT) for f in files]
        for i, (rule, glob) in enumerate(allowlist):
            if i in used_conf:
                continue
            in_scope = any(
                fnmatch.fnmatch(rel, glob)
                or fnmatch.fnmatch(rel, glob.rstrip("/") + "/*")
                for rel in scanned_rel)
            if in_scope:
                stale_msgs.append(f"{os.path.relpath(args.config, REPO_ROOT)}: "
                                  f"stale allowlist entry ({rule} {glob}) — "
                                  "it matched no finding in this scan")
    stale_failed = bool(stale_msgs) and not args.allowlist_audit
    for msg in stale_msgs:
        severity = "warning" if args.allowlist_audit else "error"
        print(f"simlint: {severity}: {msg}", file=sys.stderr)

    if args.format == "json":
        payload = {
            "engine": engine,
            "files_scanned": len(files),
            "findings": [
                {"file": os.path.relpath(f.path, REPO_ROOT), "line": f.line,
                 "rule": f.rule, "name": RULE_NAMES[f.rule], "message": f.message}
                for f in all_findings
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in all_findings:
            print(finding)

    drift = False
    if args.shard_report or args.shard_check:
        report = build_shard_report(files)
        if args.shard_report:
            with open(args.shard_report, "w", encoding="utf-8") as f:
                f.write(shard_report_json(report))
            print(f"simlint: shard report written to {args.shard_report}",
                  file=sys.stderr)
        if args.shard_check:
            try:
                with open(args.shard_check, encoding="utf-8") as f:
                    pinned = json.load(f)
            except (OSError, ValueError) as e:
                print(f"simlint: cannot load shard report {args.shard_check}: {e}",
                      file=sys.stderr)
                return 2
            compare = report
            if pinned.get("schema") == SHARD_REPORT_SCHEMA_V1:
                # One-release compat: gate the fresh scan against a pinned
                # v1 report by down-converting before diffing.
                compare = downconvert_shard_report_v1(report)
                print(f"simlint: {args.shard_check} is {SHARD_REPORT_SCHEMA_V1}; "
                      "comparing in v1 compatibility mode (regenerate with "
                      "--shard-report to adopt v2)", file=sys.stderr)
            diff_lines = diff_shard_reports(pinned, compare)
            if diff_lines:
                drift = True
                print(f"simlint: shard inventory drift vs {args.shard_check} — "
                      "new shared/domain state must be reviewed and the report "
                      "regenerated with --shard-report:", file=sys.stderr)
                for line in diff_lines:
                    print(line, file=sys.stderr)
            else:
                print(f"simlint: shard inventory matches {args.shard_check}",
                      file=sys.stderr)

    if all_findings:
        print(f"simlint: {len(all_findings)} finding(s) in {len(files)} file(s) "
              f"[engine={engine}]", file=sys.stderr)
        return 1
    if drift or stale_failed:
        return 1
    print(f"simlint: clean ({len(files)} files) [engine={engine}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
