// Reject fixture: SL014 handler-purity — a continuation scheduled from
// inside a domain's own class body may keep touching that domain's state
// (it re-enters on the same shard); touching a *different* shard's
// global from the same spot is still flagged.
// Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

class SIM_SHARD_DOMAIN("global") Simulator {
 public:
  void at();
};

SIM_SHARD_DOMAIN("channel")
int g_active_transfers = 0;

SIM_SHARD_DOMAIN("die")
int g_program_pulses = 0;

class SIM_SHARD_DOMAIN("channel") TransferEngine {
 public:
  void kick(Simulator& sim) {
    // Own-shard continuation: same domain as the enclosing class.
    sim.at([] { g_active_transfers -= 1; });
    sim.at([] { g_program_pulses += 1; });  // simlint-expect: SL014
  }
};

}  // namespace fixture
