// Fixture: SL005 default-seeded-rng. Default-constructed std <random>
// engines are deterministic per the standard, but distributions consuming
// them are not portable across standard libraries, and an implicit seed
// hides the replay contract. Seeds must be explicit.
#include <random>

namespace fixture {

unsigned bad_default_member() {
  std::mt19937 gen;          // simlint-expect: SL005
  return gen();
}

unsigned bad_default_engine() {
  std::default_random_engine engine;  // simlint-expect: SL005
  return engine();
}

// Explicitly seeded engines are auditable — no finding.
unsigned ok_seeded(unsigned seed) {
  std::mt19937_64 gen{seed};
  return static_cast<unsigned>(gen());
}

}  // namespace fixture
