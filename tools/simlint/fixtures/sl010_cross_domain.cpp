// Reject fixture: SL010 cross-domain-access — one shard domain touching
// another domain's state without going through the event queue. Not
// compiled; exercised by `simlint --self-test` only.

namespace fixture {

// Stand-in for the real passage type: exempt by name, holding one is how
// a handler reaches other domains.
class SIM_SHARD_DOMAIN("global") Simulator {
 public:
  void at();
};

class SIM_SHARD_DOMAIN("global") Registry {
 public:
  void bump() { ++count_; }

 private:
  long count_ = 0;
};

SIM_SHARD_DOMAIN("global")
int g_fleet_epoch = 0;

class SIM_SHARD_DOMAIN("channel") ChannelArbiter {
 public:
  void on_grant();

 private:
  Registry registry_;  // simlint-expect: SL010
  int credits_ = 4;
};

void ChannelArbiter::on_grant() {
  g_fleet_epoch += 1;  // simlint-expect: SL010
  credits_ -= 1;
}

class SIM_SHARD_DOMAIN("die") PlaneState {
 public:
  void tick();

 private:
  Simulator& sim_;
  Registry registry_;  // simlint-expect: SL010
};

void PlaneState::tick() {
  // Routing through the event queue is the sanctioned cross-domain path.
  sim_.at();
}

// Containment in the natural direction (coarser embeds finer) is fine.
class SIM_SHARD_DOMAIN("package") PackageState {
 private:
  PlaneState* planes_;
};

}  // namespace fixture
