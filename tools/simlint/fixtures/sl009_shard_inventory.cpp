// Reject fixture: SL009 shard-inventory — long-lived mutable state with
// no SIM_SHARD_DOMAIN / SIM_SHARD_SHARED annotation. Not compiled;
// exercised by `simlint --self-test` only, so the annotation macros are
// used textually (the matcher keys on the macro spelling, exactly as it
// does in the real tree).

namespace fixture {

int g_hot_page_count = 0;  // simlint-expect: SL009

thread_local int tls_scratch_depth = 0;  // simlint-expect: SL009

SIM_SHARD_DOMAIN("channel")
int g_channel_credit = 8;

SIM_SHARD_SHARED("guarded by the registry mutex; writers hold it for the full update")
int g_registry_epoch = 0;

// Inline annotation form: prefix on the declaration line itself.
SIM_SHARD_DOMAIN("node") long g_node_watermark = 0;

int observe() {
  static int calls = 0;  // simlint-expect: SL009
  static const int limit = 64;
  static constexpr int stride = 2;
  return calls + limit + stride;
}

int bump() {
  SIM_SHARD_SHARED("monotonic diagnostics counter; relaxed increments only, never read by sim logic")
  static int bumps = 0;
  return ++bumps;
}

// Immutable namespace-scope state needs no annotation.
const int kTableSize = 128;
constexpr int kWays = 4;

}  // namespace fixture
