// Reject fixture: SL011 non-reentrant-std — facilities with hidden
// process-wide state on the dispatch path. Not compiled; exercised by
// `simlint --self-test` only.

namespace fixture {

char* first_token(char* line) {
  return std::strtok(line, " ");  // simlint-expect: SL011
}

const char* describe_errno(int err) {
  return strerror(err);  // simlint-expect: SL011
}

const char* timestamp_text(long* t) {
  return std::ctime(t);  // simlint-expect: SL011
}

void set_locale_for_report() {
  setlocale(0, "");  // simlint-expect: SL011
}

void export_mode() {
  setenv("NVMOOC_MODE", "replay", 1);  // simlint-expect: SL011
}

const std::string& scratch_label() {
  static std::string buffer;  // simlint-expect: SL009, SL011
  buffer = "label";
  return buffer;
}

// Reentrant / caller-owned alternatives stay quiet.
void format_into(std::string& out) {
  out = "caller-owned buffer";
}

}  // namespace fixture
