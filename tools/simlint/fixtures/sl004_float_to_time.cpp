// Fixture: SL004 float-to-time. Time's constructor takes integers only;
// going through a cast launders a float in with rounding decided ad hoc
// at every call site. from_seconds() is the single sanctioned route.
#include <cstdint>

namespace fixture {

// Stand-in for nvmooc::Time so the fixture is self-contained.
struct Time {
  std::int64_t ps_ = 0;
};

Time bad_literal_scale(Time t) {
  return Time{static_cast<std::int64_t>(t.ps_ * 1.5)};  // simlint-expect: SL004
}

Time bad_double_cast(Time t, int factor) {
  return Time{static_cast<std::int64_t>(                // simlint-expect: SL004
      static_cast<double>(t.ps_) * factor)};
}

// Integer arithmetic into Time is exact — no finding.
Time ok_integer(Time t, int factor) { return Time{t.ps_ * factor}; }

// A documented truncation-preserving site may be annotated.
Time allowed_ladder(Time t, double scale) {
  // simlint: allow(float-to-time) -- preserves pre-migration truncation.
  return Time{static_cast<std::int64_t>(static_cast<double>(t.ps_) * scale)};
}

}  // namespace fixture
