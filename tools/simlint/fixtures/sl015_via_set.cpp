// Reject fixture: SL015 shared-state-sync — the SIM_SHARD_SHARED note
// names its sanctioned accessors (`via ... only`); any reference from a
// function outside that set bypasses whatever discipline the accessors
// encode. Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

SIM_SHARD_SHARED("thread-local probe depth; via install_probe and probe_depth only")
inline thread_local int tls_probe_depth = 0;

int probe_depth() { return tls_probe_depth; }

void install_probe() { tls_probe_depth += 1; }

void rogue_reset() {
  tls_probe_depth = 0;  // simlint-expect: SL015
}

// Function-local statics are confined by the language itself; the rule
// never polices them, whatever the note says.
int bump_local() {
  SIM_SHARD_SHARED("local counter; monotonic, test-only")
  static int calls = 0;
  calls += 1;
  return calls;
}

}  // namespace fixture
