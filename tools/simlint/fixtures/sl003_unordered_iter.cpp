// Fixture: SL003 unordered-iter. Hash-table iteration order is
// implementation-defined; folding over it in sim-affecting code breaks
// bit-identical replay across standard-library versions.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Tables {
  std::unordered_map<int, long> latency_by_stream_;
  std::unordered_set<std::string> hot_files_;
  std::map<int, long> ordered_totals_;
};

long bad_member_fold(const Tables& t) {
  long sum = 0;
  for (const auto& [stream, latency] : t.latency_by_stream_) {  // simlint-expect: SL003
    sum = sum * 31 + latency;
  }
  return sum;
}

long bad_inline_type() {
  std::unordered_map<int, long> local_counts_;
  long acc = 0;
  for (const auto& [k, v] : local_counts_) {  // simlint-expect: SL003
    acc += k ^ v;
  }
  return acc;
}

// Ordered containers iterate deterministically — no finding.
long ok_ordered(const Tables& t) {
  long sum = 0;
  for (const auto& [k, v] : t.ordered_totals_) sum += v;
  return sum;
}

// Order-independent folds may be annotated rather than rewritten.
long allowed_min(const Tables& t) {
  long best = 1L << 60;
  // simlint: allow(unordered-iter) -- min is an order-independent fold.
  for (const auto& [stream, latency] : t.latency_by_stream_) {
    if (latency < best) best = latency;
  }
  return best;
}

// A name declared as *both* ordered and unordered in the closure is
// ambiguous; the matcher engine must skip it (no false positive).
struct MixedA {
  std::unordered_map<int, long> mixed_counts_;
};
struct MixedB {
  std::map<int, long> mixed_counts_;
};
long ok_ambiguous(const MixedB& o) {
  long sum = 0;
  for (const auto& [k, v] : o.mixed_counts_) sum += v;
  return sum;
}

}  // namespace fixture
