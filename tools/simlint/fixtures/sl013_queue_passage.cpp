// Reject fixture: SL013 shard-escape — the event queue is the sanctioned
// crossing. The same helper is reached twice: once behind Simulator::at
// on a passage line (clean) and once called directly (escape). Only the
// direct path may be reported.
// Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

class SIM_SHARD_DOMAIN("global") Simulator {
 public:
  void at();
  void after();
};

SIM_SHARD_DOMAIN("die")
int g_plane_busy_until = 0;

void extend_plane_busy() { g_plane_busy_until += 40; }

void deferred_extend(Simulator& sim) {
  // The hop happens on a passage line: calls named here are not walked.
  sim.after(), extend_plane_busy();
}

class SIM_SHARD_DOMAIN("channel") BusScheduler {
 public:
  void defer(Simulator& sim);
  void hurry();

 private:
  int queue_depth_ = 0;
};

// Routed through the queue: the walk reaches deferred_extend, but the
// hop to the sink sits on a passage line there, so nothing past the
// queue is attributed to this method.
void BusScheduler::defer(Simulator& sim) {
  queue_depth_ += 1;
  deferred_extend(sim);
}

void BusScheduler::hurry() {  // simlint-expect: SL013
  extend_plane_busy();
}

}  // namespace fixture
