// Reject fixture: SL014 handler-purity — a lambda handed to the event
// queue runs on the *target* shard; naming another shard's global inside
// it smuggles that state across the crossing the queue exists to police.
// Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

class SIM_SHARD_DOMAIN("global") Simulator {
 public:
  void at();
  void after();
};

SIM_SHARD_DOMAIN("die")
int g_cell_activations = 0;

SIM_SHARD_DOMAIN("channel")
int g_bus_grants = 0;

void schedule_all(Simulator& sim) {
  sim.at([&] { g_cell_activations += 1; });  // simlint-expect: SL014
  sim.after([] {  // simlint-expect: SL014
    g_bus_grants = 0;
  });
  // Passing the datum by value keeps the handler pure: the lambda body
  // names only its own parameter.
  int grants = g_bus_grants;
  sim.at([grants](int scale) { return grants * scale; });
}

}  // namespace fixture
