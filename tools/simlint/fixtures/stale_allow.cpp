// Fixture: allowlist hygiene — an inline suppression that no longer
// suppresses anything is itself a finding (stale allow). The first
// allow below earns its keep; the second excuses a line that stopped
// violating long ago. Not compiled; exercised by `simlint --self-test`.

#include <chrono>

namespace fixture {

// A live suppression: the wall-clock read below is sanctioned here.
long sanctioned_clock() {
  // simlint: allow(SL001) -- fixture demonstrates a live suppression
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// The code this excused was fixed; the leftover allow would silently
// swallow the next regression on this line.
long fixed_site() {
  long ticks = 1200;  // simlint: allow(SL001) -- stale  // simlint-expect-stale
  return ticks;
}

}  // namespace fixture
