// Fixture: SL006 request-lifecycle (profiler edge without an issue).
// This TU records causal-profiler edges for a request but never mints
// the id with request_begin(), so the ids it passes reference requests
// some other layer opened (or nothing at all) — the critical-path walk
// would either drop the edges or misattribute them. Device-side hooks
// (media_segment / timeline_busy / io_path_expansion) are exempt: they
// attach to the engine's open request by design.
#include <cstdint>

namespace fixture {

void bad_edges_without_begin(auto* prof, std::uint64_t id) {
  if (prof == nullptr) return;
  prof->request_gate(id, {0, 0, 0});       // simlint-expect: SL006
  prof->request_segment(id, 0, 0, 0, 10);  // simlint-expect: SL006
  prof->request_complete(id, 0, 0, 10, 0, 10);  // simlint-expect: SL006
  prof->media_segment(0, 0, 0, 10);  // exempt: attaches to the open request
}

}  // namespace fixture
