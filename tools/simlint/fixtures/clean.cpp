// Fixture: a representative slice of idiomatic simulator code that must
// produce zero findings — guards against matcher over-reach.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

struct Time {
  std::int64_t ps_ = 0;
};

struct Device {
  std::map<std::uint64_t, std::uint32_t> erase_counts_;
  std::vector<Time> completions_;
};

Time ok_latest(const Device& d) {
  Time latest;
  for (const Time& t : d.completions_) {
    latest.ps_ = std::max(latest.ps_, t.ps_);
  }
  return latest;
}

std::uint64_t ok_ordered_walk(const Device& d) {
  std::uint64_t total = 0;
  for (const auto& [block, erases] : d.erase_counts_) total += erases;
  return total;
}

// Integer time arithmetic; "time" inside identifiers; timing prose in a
// string — none of these are wall-clock reads.
Time ok_media_time(Time start, int ops) { return Time{start.ps_ + ops * 50}; }
const char* ok_label() { return "wall-clock reads are banned here"; }

// --- v4 sanctioned shapes: none of these may trip SL013/SL014/SL015 ---

class SIM_SHARD_DOMAIN("global") Simulator {
 public:
  void at();
};

SIM_SHARD_DOMAIN("channel")
int g_channel_credits = 0;

SIM_SHARD_DOMAIN("global")
int g_run_generation = 0;

void refill_credits() { g_channel_credits += 4; }

SIM_SHARD_SHARED("drop tally; relaxed increments; via note_drop only")
inline int g_ok_drops = 0;

void note_drop() { g_ok_drops += 1; }

class SIM_SHARD_DOMAIN("channel") OkArbiter {
 public:
  // Same-domain helper write: no escape. Ancestor-domain handler: the
  // queue may carry state *up* the containment chain. The shared tally
  // is mutated behind its via-accessor (and so shows up in the report
  // as mutated-in-handler).
  void ok_refill(Simulator& sim) {
    refill_credits();
    note_drop();
    sim.at([] { g_run_generation += 1; });
  }
};

SIM_SHARD_SHARED("install slot; via OkProbe and ok_probe only")
inline thread_local int tls_ok_probe = 0;

int ok_probe() { return tls_ok_probe; }

class OkProbe {
 public:
  OkProbe() : saved_(tls_ok_probe) { tls_ok_probe = saved_ + 1; }
  ~OkProbe() { tls_ok_probe = saved_; }

 private:
  int saved_ = 0;
};

}  // namespace fixture
