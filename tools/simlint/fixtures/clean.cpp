// Fixture: a representative slice of idiomatic simulator code that must
// produce zero findings — guards against matcher over-reach.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

struct Time {
  std::int64_t ps_ = 0;
};

struct Device {
  std::map<std::uint64_t, std::uint32_t> erase_counts_;
  std::vector<Time> completions_;
};

Time ok_latest(const Device& d) {
  Time latest;
  for (const Time& t : d.completions_) {
    latest.ps_ = std::max(latest.ps_, t.ps_);
  }
  return latest;
}

std::uint64_t ok_ordered_walk(const Device& d) {
  std::uint64_t total = 0;
  for (const auto& [block, erases] : d.erase_counts_) total += erases;
  return total;
}

// Integer time arithmetic; "time" inside identifiers; timing prose in a
// string — none of these are wall-clock reads.
Time ok_media_time(Time start, int ops) { return Time{start.ps_ + ops * 50}; }
const char* ok_label() { return "wall-clock reads are banned here"; }

}  // namespace fixture
