// Fixture: SL002 ambient-rng. Randomness that does not flow from the
// experiment's seeded nvmooc::Rng cannot be replayed.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_c_rand() {
  srand(42);              // simlint-expect: SL002
  return rand();          // simlint-expect: SL002
}

unsigned bad_entropy_seed() {
  std::random_device rd;  // simlint-expect: SL002
  return rd();
}

// Non-violations: words containing "rand" and member calls named rand.
struct Operand {
  int rand_field = 0;
  int operand() const { return rand_field; }
};
int ok_identifier(const Operand& o) { return o.operand(); }

}  // namespace fixture
