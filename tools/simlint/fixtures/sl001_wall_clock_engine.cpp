// Fixture: SL001 reject — engine/simulation code must not read the host
// clock even now that the tree has a sanctioned helper. The allowlist
// (simlint.conf) scopes the exemption to src/common/wallclock.cpp alone;
// this fixture models a replay-engine file that bypasses it and must
// still be reported. The conf-scope itself is asserted by extra checks
// in `simlint.py --self-test`.
#include <chrono>

namespace fixture_engine {

// A hook site timing itself "just this once" — exactly the drift that
// turns bit-identical replay into machine-dependent replay.
double replay_loop_seconds() {
  const auto begin = std::chrono::steady_clock::now();  // simlint-expect: SL001
  double makespan_ps = 0.0;
  for (int i = 0; i < 1024; ++i) makespan_ps += 1.0;
  const auto end = std::chrono::steady_clock::now();  // simlint-expect: SL001
  return std::chrono::duration<double>(end - begin).count() +  // simlint-expect: SL001
         makespan_ps * 0.0;
}

}  // namespace fixture_engine
