// Reject fixture: SL013 shard-escape — a channel-domain method that never
// names the foreign global itself, but reaches a write to it through a
// helper one call deep. SL010 cannot see this; the call-graph walk must.
// Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

class SIM_SHARD_DOMAIN("global") Simulator {
 public:
  void at();
};

SIM_SHARD_DOMAIN("die")
int g_die_epoch = 0;

SIM_SHARD_DOMAIN("global")
int g_fleet_generation = 0;

// The laundering helper: a free function, so no rule fires here — the
// write is only wrong in the context of who calls it.
void bump_die_epoch() { g_die_epoch += 1; }

void bump_fleet() { g_fleet_generation += 1; }

class SIM_SHARD_DOMAIN("channel") ChannelArbiter {
 public:
  void on_grant();
  void on_refresh();

 private:
  Simulator& sim_;
  int credits_ = 4;
};

void ChannelArbiter::on_grant() {  // simlint-expect: SL013
  credits_ -= 1;
  bump_die_epoch();
}

// Writing an *ancestor* (coarser) domain's global downstream is the
// natural containment direction and stays sanctioned.
void ChannelArbiter::on_refresh() {
  credits_ = 4;
  bump_fleet();
}

}  // namespace fixture
