// Reject fixture: SL015 shared-state-sync — a via clause can name a
// class, which covers every member (constructors and destructors
// included) of that class and nothing else.
// Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

class Gauge;

SIM_SHARD_SHARED("install slot for the active gauge; via GaugeSession only")
inline thread_local Gauge* tls_gauge = nullptr;

class GaugeSession {
 public:
  GaugeSession() : previous_(tls_gauge) { tls_gauge = this->make(); }
  ~GaugeSession() { tls_gauge = previous_; }

 private:
  Gauge* make();
  Gauge* previous_ = nullptr;
};

class Meter {
 public:
  void sample() {
    last_ = tls_gauge;  // simlint-expect: SL015
  }

 private:
  Gauge* last_ = nullptr;
};

}  // namespace fixture
