// Fixture: SL001 wall-clock. Simulation code reading the host clock makes
// latencies depend on machine load — replay is no longer bit-identical.
// Each violating line carries a `simlint-expect` marker consumed by
// `simlint.py --self-test`.
#include <chrono>
#include <ctime>

namespace fixture {

long bad_now_ns() {
  auto t = std::chrono::steady_clock::now();  // simlint-expect: SL001
  return std::chrono::duration_cast<          // simlint-expect: SL001
             std::chrono::nanoseconds>(       // simlint-expect: SL001
             t.time_since_epoch())
      .count();
}

long bad_epoch() {
  return static_cast<long>(time(nullptr));  // simlint-expect: SL001
}

long bad_cpu_clock() {
  return static_cast<long>(std::clock());  // simlint-expect: SL001
}

// Non-violations the matcher must not trip on: identifiers that merely
// contain "time", and prose in comments/strings about std::chrono.
long media_time(long x) { return x; }
long ok_call() { return media_time(3); }
const char* ok_string() { return "uses std::chrono::steady_clock"; }

// Suppression: an annotated line is not reported.
long allowed_now() {
  return static_cast<long>(time(nullptr));  // simlint: allow(wall-clock) -- fixture demo
}

}  // namespace fixture
