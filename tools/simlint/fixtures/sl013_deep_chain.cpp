// Reject fixture: SL013 shard-escape — the write hides three calls deep,
// and two different entry points converge on the same sink. Each method
// gets exactly one finding per escaped global (path dedup), and the walk
// must survive multi-hop chains without re-reporting.
// Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

SIM_SHARD_DOMAIN("package")
long g_package_wear = 0;

void sink_wear_update() { g_package_wear += 8; }

void relay_two() { sink_wear_update(); }

void relay_one() {
  relay_two();
  sink_wear_update();  // second path to the same sink: still one finding
}

class SIM_SHARD_DOMAIN("channel") WearLeveler {
 public:
  void rotate();
  void audit();

 private:
  int cursor_ = 0;
};

void WearLeveler::rotate() {  // simlint-expect: SL013
  cursor_ += 1;
  relay_one();
}

void WearLeveler::audit() {  // simlint-expect: SL013
  relay_two();
}

}  // namespace fixture
