// Reject fixture: SL015 shared-state-sync — a SIM_SHARD_SHARED note with
// no `via ... only` clause confines the variable to its declaring file;
// reaching it from an includer means the note under-documents how the
// access is synchronised. Not compiled; exercised by `simlint
// --self-test` only.

#include "sl015_shared_decl.hpp"

namespace fixture {

long poll_epoch() {
  return g_replay_epoch;  // simlint-expect: SL015
}

// Going through the declaring file's accessor keeps the contract local
// to where the synchronisation story is written down.
long poll_epoch_properly() { return replay_epoch_snapshot(); }

}  // namespace fixture
