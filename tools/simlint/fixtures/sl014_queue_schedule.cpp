// Reject fixture: SL014 handler-purity — the raw EventQueue::schedule
// spelling (pointer call, mutable lambda, trailing return type) gets the
// same scrutiny as the Simulator sugar.
// Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

class SIM_SHARD_DOMAIN("global") EventQueue {
 public:
  void schedule();
};

SIM_SHARD_DOMAIN("package")
unsigned g_flash_bus_cycles = 0;

SIM_SHARD_DOMAIN("channel")
unsigned g_dma_inflight = 0;

void pump(EventQueue* queue) {
  queue->schedule();  // no handler: nothing to inspect
  queue->schedule([&]() mutable -> void {  // simlint-expect: SL014
    g_flash_bus_cycles += 2;
  });
  unsigned inflight = g_dma_inflight;
  queue->schedule([inflight]() -> unsigned { return inflight + 1; });
}

}  // namespace fixture
