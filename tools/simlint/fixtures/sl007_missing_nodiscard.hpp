// Fixture: SL007 missing-nodiscard. Time/Bytes returned by value from a
// header API must carry [[nodiscard]]: the only reason to call a pure
// cost/size function is its result, and silently dropping a unit-typed
// value is how conservation bugs hide. References and operators are out
// of scope (accessors returning `const Time&` cannot be "dropped" in the
// same sense, and operator results are consumed by the expression).
#pragma once

#include <cstdint>

namespace fixture {

// Stand-ins for nvmooc::Time / nvmooc::Bytes.
struct Time {
  std::int64_t ps_ = 0;
};
struct Bytes {
  std::uint64_t v_ = 0;
};

struct Device {
  Time transfer_cost(Bytes size) const;            // simlint-expect: SL007
  static Bytes page_span(Bytes size);              // simlint-expect: SL007
  inline Time busy_until() const { return t_; }    // simlint-expect: SL007

  [[nodiscard]] Time ok_annotated(Bytes size) const;
  [[nodiscard]] static Bytes ok_static(Bytes size);
  // Attribute on the preceding line (clang-format split) also counts.
  [[nodiscard]]
  Time ok_split_attribute(Bytes size) const;

  // By-reference returns and operators are not flagged.
  const Time& deadline() const { return t_; }
  Time& mutable_deadline() { return t_; }
  friend Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }

  Time t_;
};

}  // namespace fixture
