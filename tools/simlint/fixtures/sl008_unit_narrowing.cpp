// Fixture: SL008 unit-narrowing. .ps() and .value() are the sanctioned
// escape hatches out of the strong unit types, but their result is a
// full 64-bit count: picoseconds overflow int32 after ~2 ms of simulated
// time, and float drops byte-exactness above 2^24. Narrowing the escape
// hatch silently reintroduces the truncation bugs the wrappers exist to
// prevent; widen to double / int64_t / uint64_t instead.
#include <cstdint>

namespace fixture {

// Stand-ins for nvmooc::Time / nvmooc::Bytes.
struct Time {
  std::int64_t ps() const { return ps_; }
  std::int64_t ps_ = 0;
};
struct Bytes {
  std::uint64_t value() const { return v_; }
  std::uint64_t v_ = 0;
};

int bad_int_ps(Time t) {
  return static_cast<int>(t.ps());                    // simlint-expect: SL008
}

unsigned bad_unsigned_value(Bytes b) {
  return static_cast<unsigned>(b.value());            // simlint-expect: SL008
}

float bad_float_value(Bytes b) {
  return static_cast<float>(b.value());               // simlint-expect: SL008
}

std::uint32_t bad_u32_value(Bytes b) {
  return static_cast<std::uint32_t>(b.value());       // simlint-expect: SL008
}

// Widening conversions keep full precision — no finding.
double ok_double(Time t) { return static_cast<double>(t.ps()); }
std::int64_t ok_i64(Time t) { return static_cast<std::int64_t>(t.ps()); }
std::uint64_t ok_u64(Bytes b) { return static_cast<std::uint64_t>(b.value()); }

}  // namespace fixture
