// Support header for the SL015 no-clause fixture: a SIM_SHARD_SHARED
// variable whose note names no `via ... only` set, which confines it to
// this file. This header itself is clean — the violation lives in the
// including fixture. Not compiled; exercised by `simlint --self-test`.

namespace fixture {

SIM_SHARD_SHARED("epoch snapshot; refreshed between replays while workers are parked")
inline long g_replay_epoch = 0;

// Declaring-file references are decl-adjacent and allowed.
inline long replay_epoch_snapshot() { return g_replay_epoch; }

}  // namespace fixture
