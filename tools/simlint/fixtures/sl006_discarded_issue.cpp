// Fixture: SL006 request-lifecycle (discarded id). request_issued()
// returns the id every later stage call needs; invoking it as a bare
// statement throws the handle away, so the request is tracked but can
// never be admitted or completed — the audit report then counts it as
// an incomplete request on every replay.
#include <cstdint>

namespace fixture {

// Stand-in for check::Auditor so the fixture is self-contained.
struct Auditor {
  [[nodiscard]] std::uint64_t request_issued(std::int64_t now) { return ++next_; }
  void request_completed(std::uint64_t id, std::int64_t now) { last_ = id + now; }
  std::uint64_t next_ = 0;
  std::uint64_t last_ = 0;
};

std::uint64_t bad_discard(Auditor& aud) {
  aud.request_issued(10);  // simlint-expect: SL006
  return 0;
}

std::uint64_t ok_bound(Auditor& aud) {
  const std::uint64_t id = aud.request_issued(10);
  aud.request_completed(id, 20);
  return id;
}

std::uint64_t ok_ternary(Auditor* aud) {
  return aud != nullptr ? aud->request_issued(10) : 0;
}

}  // namespace fixture
