// Reject fixture: SL012 shard-annotation hygiene — unknown domains,
// non-literal arguments, and shared annotations with no synchronisation
// story. Not compiled; exercised by `simlint --self-test` only.

namespace fixture {

class SIM_SHARD_DOMAIN("lane") BogusDomain {  // simlint-expect: SL012
};

SIM_SHARD_DOMAIN(kComputedDomain)  // simlint-expect: SL012
int g_dynamic_domain = 0;

SIM_SHARD_SHARED("")  // simlint-expect: SL012
int g_unexplained = 0;

SIM_SHARD_SHARED("mutex")  // simlint-expect: SL012
int g_terse_note = 0;

// Well-formed annotations stay quiet.
class SIM_SHARD_DOMAIN("package") GoodDomain {
};

SIM_SHARD_SHARED("guarded by the pool mutex; writers drain in-flight work first")
int g_explained = 0;

}  // namespace fixture
