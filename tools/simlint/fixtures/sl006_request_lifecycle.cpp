// Fixture: SL006 request-lifecycle (missing issue). This TU reports
// later lifecycle stages to the auditor but never calls
// request_issued(), so every id it passes is a phantom — the audited
// replay will report causality violations for requests the simulator
// never actually issued. (In real code the hook declarations live in
// check/audit.hpp, not in the TU, so only *calls* are visible here;
// the abbreviated template mirrors that.)
#include <cstdint>

namespace fixture {

void bad_stages_without_issue(auto* aud, std::uint64_t id) {
  if (aud == nullptr) return;
  aud->request_admitted(id, 10);     // simlint-expect: SL006
  aud->request_dispatched(id, 20);   // simlint-expect: SL006
  aud->request_completed(id, 30);    // simlint-expect: SL006
}

}  // namespace fixture
