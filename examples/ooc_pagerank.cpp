// Out-of-core PageRank: the other workload family the paper's intro
// motivates (external-memory graph computations). A power-law web graph's
// transition matrix streams from node-local storage once per power
// iteration; the captured I/O replays through the storage architectures.
//
// Run: ./build/examples/ooc_pagerank [nodes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "cluster/configs.hpp"
#include "cluster/engine.hpp"
#include "ooc/pagerank.hpp"
#include "ooc/tile_store.hpp"

int main(int argc, char** argv) {
  using namespace nvmooc;
  WebGraphParams params;
  params.nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  std::printf("Generating power-law web graph: %zu pages ...\n", params.nodes);
  const WebGraph graph = synthetic_web_graph(params);
  std::printf("  %zu edges, %zu dangling pages, transition matrix %.1f MiB\n",
              graph.edges, graph.dangling.size(),
              static_cast<double>(graph.transition.storage_bytes(0, graph.transition.rows())) /
                  static_cast<double>(MiB));

  MemoryStorage backing(graph.transition.storage_bytes(0, graph.transition.rows()) + 2 * MiB);
  TracedStorage traced(backing);

  PagerankOptions options;
  options.tolerance = 1e-10;
  const PagerankResult result = pagerank_out_of_core(graph, traced, 8192, options);
  Trace trace = traced.take_trace();
  // Strip the pre-load writes (they happen before the timed window).
  Trace reads_only;
  for (const PosixRequest& request : trace.requests()) {
    if (request.op == NvmOp::kRead) reads_only.add(request);
  }

  std::printf("\nPageRank: %s after %zu iterations (final L1 delta %.2e)\n",
              result.converged ? "converged" : "NOT converged", result.iterations,
              result.final_delta);
  const double total = std::accumulate(result.ranks.begin(), result.ranks.end(), 0.0);
  std::printf("  rank mass: %.9f (should be 1)\n", total);

  std::vector<std::size_t> order(result.ranks.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return result.ranks[a] > result.ranks[b];
                    });
  std::printf("  top pages:");
  for (int i = 0; i < 5; ++i) {
    std::printf(" #%zu(%.2e)", order[static_cast<std::size_t>(i)],
                result.ranks[order[static_cast<std::size_t>(i)]]);
  }
  std::printf("\n");

  std::printf("\nCaptured %zu read requests (%.1f MiB); replay through the stacks:\n",
              reads_only.size(),
              static_cast<double>(reads_only.stats().total_bytes) / static_cast<double>(MiB));
  for (const auto& config : {ion_gpfs_config(NvmType::kMlc), cnl_ufs_config(NvmType::kMlc),
                             cnl_native16_config(NvmType::kPcm)}) {
    const ExperimentResult replay = run_experiment(config, reads_only);
    std::printf("  %-16s %-4s : %8.0f MB/s\n", replay.name.c_str(),
                std::string(to_string(replay.media)).c_str(), replay.achieved_mbps);
  }
  return result.converged ? 0 : 1;
}
