// The paper's application, end to end: build a synthetic nuclear-CI
// Hamiltonian, keep it out-of-core, and solve for its lowest eigenpairs
// with LOBPCG while DOoC-style prefetching overlaps tile I/O with the
// SpMM — then replay the captured I/O through the simulated storage
// stacks to see what each architecture would have delivered.
//
// Run: ./build/examples/ooc_eigensolver [dimension] [block_size]
#include <cstdio>
#include <cstdlib>

#include "cluster/configs.hpp"
#include "common/wallclock.hpp"
#include "cluster/engine.hpp"
#include "dooc/prefetcher.hpp"
#include "fs/presets.hpp"
#include "ooc/lobpcg.hpp"
#include "ooc/ooc_operator.hpp"
#include "ooc/tile_store.hpp"

int main(int argc, char** argv) {
  using namespace nvmooc;
  const std::size_t dimension = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  const std::size_t block = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

  // -- Build H (the pre-processing step the paper stores on disk). ------
  HamiltonianParams h_params;
  h_params.dimension = dimension;
  h_params.band_width = 64;
  h_params.band_fill = 0.35;
  h_params.long_range_per_row = 4;
  std::printf("Generating synthetic CI Hamiltonian: n=%zu ...\n", dimension);
  const CsrMatrix h = synthetic_hamiltonian(h_params);
  std::printf("  nnz=%zu (%.1f per row), symmetric=%s\n", h.nnz(),
              static_cast<double>(h.nnz()) / dimension,
              h.is_symmetric(0.0) ? "yes" : "NO");

  // -- Pre-load to (in-memory stand-in for) the compute-local SSD. ------
  MemoryStorage storage(h.storage_bytes(0, h.rows()) + 4 * MiB);
  TracedStorage traced(storage);
  OocHamiltonian ooc(h, traced, /*rows_per_tile=*/2048);
  (void)traced.take_trace();  // Pre-load happens before the timed window.
  std::printf("  dataset on storage: %.1f MiB in %zu tiles\n",
              static_cast<double>(ooc.dataset_bytes()) / static_cast<double>(MiB), ooc.tile_count());

  // -- Solve with DOoC prefetching overlapping I/O and compute. ---------
  std::vector<TilePrefetcher::TileRef> tiles;
  for (std::size_t t = 0; t < ooc.tile_count(); ++t) {
    tiles.push_back({ooc.tile(t).offset, ooc.tile(t).bytes});
  }
  TilePrefetcher prefetcher(traced, tiles, /*depth=*/4);

  LobpcgOptions options;
  options.block_size = block;
  options.tolerance = 1e-5;
  options.max_iterations = 300;

  const Time t0 = wallclock::now_ns();
  const LobpcgResult solution = lobpcg(
      [&](const DenseMatrix& x) {
        DenseMatrix y(x.rows(), x.cols());
        for (std::size_t t = 0; t < ooc.tile_count(); ++t) {
          const auto buffer = prefetcher.get(t);
          ooc.apply_tile(ooc.tile(t), *buffer, x, y);
        }
        prefetcher.restart();
        return y;
      },
      h.rows(), options);
  const double seconds = wallclock::to_seconds(wallclock::now_ns() - t0);

  std::printf("\nLOBPCG: %s in %zu iterations (%zu H applications, %.2f s wall)\n",
              solution.converged ? "converged" : "NOT converged", solution.iterations,
              solution.operator_applications, seconds);
  std::printf("  prefetch hits/stalls: %llu/%llu\n",
              static_cast<unsigned long long>(prefetcher.stats().hits),
              static_cast<unsigned long long>(prefetcher.stats().stalls));
  std::printf("  lowest eigenvalues:");
  for (std::size_t j = 0; j < std::min<std::size_t>(block, 8); ++j) {
    std::printf(" %.6f", solution.eigenvalues[j]);
  }
  std::printf("\n");

  // -- What would each storage architecture have delivered? -------------
  const Trace trace = traced.take_trace();
  std::printf("\nCaptured %zu POSIX requests (%.1f MiB of I/O); replaying through the\n"
              "simulated stacks:\n",
              trace.size(), static_cast<double>(trace.stats().total_bytes) / static_cast<double>(MiB));
  for (const auto& config :
       {ion_gpfs_config(NvmType::kMlc), cnl_fs_config(ext4_behavior(), NvmType::kMlc),
        cnl_ufs_config(NvmType::kMlc), cnl_native16_config(NvmType::kPcm)}) {
    const ExperimentResult result = run_experiment(config, trace);
    std::printf("  %-16s %-4s : %8.0f MB/s (I/O wall %.1f ms)\n", result.name.c_str(),
                std::string(to_string(result.media)).c_str(), result.achieved_mbps,
                static_cast<double>(result.makespan) / static_cast<double>(kMillisecond));
  }
  return solution.converged ? 0 : 1;
}
