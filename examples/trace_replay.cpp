// Replay a trace file (or a built-in pattern) through a chosen
// configuration — the general-purpose driver for exploring the simulator.
//
// Run: ./build/examples/trace_replay --config=cnl-ufs --media=tlc
//        [--trace=FILE | --pattern=seq|rand|strided] [--size-mib=256]
//        [--faults=SCENARIO] [--audit]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "check/audit.hpp"
#include "cluster/configs.hpp"
#include "cluster/engine.hpp"
#include "common/random.hpp"
#include "common/shard_guard.hpp"
#include "fs/presets.hpp"
#include "obs/cli.hpp"
#include "trace/scenario.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace nvmooc;

const char* kUsage =
    "usage: trace_replay [--config=NAME] [--media=slc|mlc|tlc|pcm]\n"
    "                    [--trace=FILE | --pattern=seq|rand|strided]\n"
    "                    [--size-mib=N] [--request-kib=N] [--faults=SCENARIO]\n"
    "                    [--trace-out=FILE] [--metrics-out=FILE]\n"
    "                    [--result-out=FILE] [--log-level=debug|info|warn|error|off]\n"
    "                    [--audit]  (verify conservation/causality/occupancy/FTL\n"
    "                                invariants during the replay; exit 3 on any\n"
    "                                violation)\n"
    "                    [--shard-guard] (dynamic shard-domain sanitizer: assert\n"
    "                                 every media access happens on behalf of the\n"
    "                                 owning channel/package/die; exit 4 on any\n"
    "                                 cross-domain touch. Default-on in the\n"
    "                                 `guard` CMake preset)\n"
    "                    [--profile] (record the causal event graph, print the\n"
    "                                 critical-path blame report, and add the\n"
    "                                 \"profile\" section to --result-out)\n"
    "                    [--speed-report] (host telemetry: events/sec speedometer,\n"
    "                                 wall-time attribution, memory accounting;\n"
    "                                 prints the speed report and adds the \"host\"\n"
    "                                 section to --result-out)\n"
    "                    [--heartbeat-sec=N] (progress-heartbeat period for\n"
    "                                 --speed-report; 0 logs every request;\n"
    "                                 default 5)\n"
    "                    [--exemplars-out=FILE] (Perfetto-loadable waterfalls of\n"
    "                                 the K slowest requests per class — the p999\n"
    "                                 stragglers, without full --trace-out cost)\n"
    "                    [--exemplars=K] (exemplars kept per request class;\n"
    "                                 default 8)\n"
    "                    [--no-flight-recorder] (disable the always-on ring of\n"
    "                                 recent events + request ledgers that is\n"
    "                                 dumped automatically on audit/shard-guard\n"
    "                                 violations and fault aborts)\n"
    "                    [--flight-out=FILE] (flight-dump path; default\n"
    "                                 flight-dump.json)\n"
    "configs: ion-gpfs, cnl-jfs, cnl-btrfs, cnl-xfs, cnl-reiserfs, cnl-ext2,\n"
    "         cnl-ext3, cnl-ext4, cnl-ext4-l, cnl-ufs, cnl-bridge-16,\n"
    "         cnl-native-8, cnl-native-16\n";

std::string option(int argc, char** argv, const char* key, const char* fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (!std::strncmp(argv[i], prefix.c_str(), prefix.size())) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool flag(int argc, char** argv, const char* key) {
  const std::string want = std::string("--") + key;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

bool find_config(const std::string& name, NvmType media, ExperimentConfig& out) {
  for (const ExperimentConfig& config : all_configs(media)) {
    std::string lowered = config.name;
    for (char& c : lowered) c = static_cast<char>(std::tolower(c));
    if (lowered == name) {
      out = config;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string config_name = option(argc, argv, "config", "cnl-ufs");
  const std::string media_name = option(argc, argv, "media", "tlc");
  const std::string trace_path = option(argc, argv, "trace", "");
  const std::string pattern = option(argc, argv, "pattern", "seq");
  const Bytes size = std::strtoull(option(argc, argv, "size-mib", "256").c_str(), nullptr, 10) * MiB;
  const Bytes request =
      std::strtoull(option(argc, argv, "request-kib", "8192").c_str(), nullptr, 10) * KiB;

  NvmType media;
  if (media_name == "slc") media = NvmType::kSlc;
  else if (media_name == "mlc") media = NvmType::kMlc;
  else if (media_name == "tlc") media = NvmType::kTlc;
  else if (media_name == "pcm") media = NvmType::kPcm;
  else {
    std::fputs(kUsage, stderr);
    return 1;
  }

  ExperimentConfig config;
  if (!find_config(config_name, media, config)) {
    std::fprintf(stderr, "unknown config '%s'\n%s", config_name.c_str(), kUsage);
    return 1;
  }

  obs::CliOptions obs_options;
  obs_options.trace_out = option(argc, argv, "trace-out", "");
  obs_options.metrics_out = option(argc, argv, "metrics-out", "");
  obs_options.log_level = option(argc, argv, "log-level", "");
  obs_options.profile = flag(argc, argv, "profile");
  obs_options.speed_report = flag(argc, argv, "speed-report");
  obs_options.heartbeat_sec =
      std::strtod(option(argc, argv, "heartbeat-sec", "5").c_str(), nullptr);
  obs_options.exemplars_out = option(argc, argv, "exemplars-out", "");
  obs_options.exemplar_count = static_cast<std::size_t>(
      std::strtoull(option(argc, argv, "exemplars", "8").c_str(), nullptr, 10));
  obs_options.flight = !flag(argc, argv, "no-flight-recorder");
  obs_options.flight_out = option(argc, argv, "flight-out", "");
  const std::string result_out = option(argc, argv, "result-out", "");
  if (!obs::apply_log_level(obs_options.log_level)) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  // Fail on unwritable output destinations *before* the replay runs, not
  // after: a typo'd directory must not cost a long simulation its output.
  if (!obs::validate_output_paths(obs_options) ||
      !obs::validate_output_path(result_out, "--result-out")) {
    return 1;
  }

  const std::string fault_path = option(argc, argv, "faults", "");
  if (!fault_path.empty()) {
    try {
      config.fault = load_fault_scenario(fault_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad fault scenario: %s\n", e.what());
      return 1;
    }
  }

  Trace trace;
  if (!trace_path.empty()) {
    trace = Trace::load(trace_path);
  } else if (pattern == "seq") {
    trace = sequential_read_trace(size, request);
  } else if (pattern == "rand") {
    Rng rng(1);
    trace = random_read_trace(size, request, size / request, rng);
  } else if (pattern == "strided") {
    trace = strided_read_trace(size, request, request * 4, size / request);
  } else {
    std::fputs(kUsage, stderr);
    return 1;
  }

  const TraceStats stats = trace.stats();
  std::printf("trace: %zu requests, %.1f MiB, sequentiality %.2f, %.0f%% reads\n",
              trace.size(), static_cast<double>(stats.total_bytes) / static_cast<double>(MiB),
              stats.sequentiality, 100.0 * stats.read_fraction);

  const bool audit = flag(argc, argv, "audit");
#if defined(NVMOOC_SHARD_GUARD_DEFAULT) && NVMOOC_SHARD_GUARD_DEFAULT
  const bool shard_guard = true;  // `guard` preset: always sanitized.
#else
  const bool shard_guard = flag(argc, argv, "shard-guard");
#endif
  const std::unique_ptr<obs::ObsSession> session = obs::make_session(obs_options);
  // The audit session installs the thread-local auditor the hook sites
  // check; the engine snapshots the verdict into result.audit.
  std::unique_ptr<check::AuditSession> audit_session;
  if (audit) audit_session = std::make_unique<check::AuditSession>();
  // Same install pattern for the shard sanitizer; the session outlives
  // the replay and we read its report back directly.
  std::unique_ptr<shard::ShardGuardSession> guard_session;
  if (shard_guard) guard_session = std::make_unique<shard::ShardGuardSession>();
  // Tail-exemplar observatory (--exemplars-out) and the default-on
  // flight recorder — both install thread-locally, like audit/guard.
  std::unique_ptr<obs::LatencySession> latency_session;
  if (!obs_options.exemplars_out.empty()) {
    latency_session = std::make_unique<obs::LatencySession>(obs_options.exemplar_count);
  }
  std::unique_ptr<obs::FlightSession> flight_session;
  if (obs_options.flight) flight_session = std::make_unique<obs::FlightSession>();
  // On any failing exit, the flight recorder's postmortem lands on disk
  // next to the exit code.
  const auto dump_flight_now = [&](const std::string& reason) {
    if (flight_session != nullptr) {
      obs::dump_flight(flight_session->recorder(), obs_options, reason);
    }
  };
  const ExperimentResult result = run_experiment(config, trace);
  if (!obs::write_outputs(session.get(), obs_options)) return 1;
  if (latency_session != nullptr) {
    if (!obs::write_exemplars(latency_session->observatory(), obs_options)) return 1;
    std::printf("%s", latency_session->observatory().summary().c_str());
  }
  if (!result_out.empty()) {
    std::ofstream out(result_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for result output\n", result_out.c_str());
      return 1;
    }
    out << result.to_json() << '\n';
  }

  std::printf("%s on %s:\n", result.name.c_str(), std::string(to_string(media)).c_str());
  std::printf("  throughput     %.0f MB/s over %.2f ms\n", result.achieved_mbps,
              static_cast<double>(result.makespan) / static_cast<double>(kMillisecond));
  std::printf("  utilisation    channel %.0f%%, package %.0f%%\n",
              100.0 * result.channel_utilization, 100.0 * result.package_utilization);
  std::printf("  parallelism    PAL1 %.0f%%  PAL2 %.0f%%  PAL3 %.0f%%  PAL4 %.0f%%\n",
              100.0 * result.pal_fraction[0], 100.0 * result.pal_fraction[1],
              100.0 * result.pal_fraction[2], 100.0 * result.pal_fraction[3]);
  std::printf("  phases         ");
  for (int p = 0; p < kPhaseCount; ++p) {
    std::printf("%s %.0f%%  ", to_string(static_cast<Phase>(p)),
                100.0 * result.phase_fraction[p]);
  }
  std::printf("\n  device traffic %llu requests, %llu transactions\n",
              static_cast<unsigned long long>(result.device_requests),
              static_cast<unsigned long long>(result.transactions));
  if (config.fault.enabled) {
    const ReliabilityStats& r = result.reliability;
    std::printf("  reliability    %llu retries, %llu corrected, %llu uncorrectable, "
                "%llu stuck-die, %llu stalls\n",
                static_cast<unsigned long long>(r.read_retries),
                static_cast<unsigned long long>(r.corrected_reads),
                static_cast<unsigned long long>(r.uncorrectable_reads),
                static_cast<unsigned long long>(r.die_stuck_reads),
                static_cast<unsigned long long>(r.channel_stalls));
    std::printf("  bad blocks     %llu retired (%llu on spares), %.1f MiB capacity "
                "lost, %llu pages relocated\n",
                static_cast<unsigned long long>(r.remapped_blocks),
                static_cast<unsigned long long>(r.spare_blocks_used),
                static_cast<double>(r.capacity_lost) / static_cast<double>(MiB),
                static_cast<unsigned long long>(r.remap_relocations));
    std::printf("  degraded mode  %llu requests, %.1f MiB via replica; effective "
                "%.0f MB/s\n",
                static_cast<unsigned long long>(r.degraded_requests),
                static_cast<double>(r.degraded_bytes) / static_cast<double>(MiB), r.effective_mbps);
    if (r.aborted) {
      std::printf("  ABORTED        %s\n", r.abort_reason.c_str());
      if (audit) std::printf("%s\n", result.audit.summary().c_str());
      dump_flight_now("fault-injection abort: " + r.abort_reason);
      return result.audit.passed() ? 2 : 3;
    }
  }
  if (result.profile.enabled) {
    std::printf("%s", result.profile.summary().c_str());
  }
  if (result.host.enabled) {
    std::printf("%s", result.host.summary().c_str());
  }
  if (audit) {
    std::printf("%s\n", result.audit.summary().c_str());
    if (!result.audit.passed()) {
      dump_flight_now("audit violation: " +
                      std::to_string(result.audit.violation_count) +
                      " invariant violation(s)");
      return 3;
    }
  }
  if (guard_session != nullptr) {
    const shard::ShardGuardReport& guard_report = guard_session->report();
    std::printf("%s\n", guard_report.summary().c_str());
    if (!guard_report.passed()) {
      dump_flight_now("shard-guard violation: " +
                      std::to_string(guard_report.violation_count) +
                      " cross-domain access(es)");
      return 4;
    }
  }
  return 0;
}
