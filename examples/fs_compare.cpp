// Compare every file system of Table 2 on one NVM type: the Figure 7
// experiment as an interactive tool.
//
// Run: ./build/examples/fs_compare [slc|mlc|tlc|pcm] [dataset_MiB]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/configs.hpp"
#include "cluster/engine.hpp"
#include "common/table.hpp"
#include "common/string_util.hpp"
#include "fs/presets.hpp"
#include "ooc/workload.hpp"

int main(int argc, char** argv) {
  using namespace nvmooc;

  NvmType media = NvmType::kTlc;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "slc")) media = NvmType::kSlc;
    else if (!std::strcmp(argv[1], "mlc")) media = NvmType::kMlc;
    else if (!std::strcmp(argv[1], "tlc")) media = NvmType::kTlc;
    else if (!std::strcmp(argv[1], "pcm")) media = NvmType::kPcm;
    else {
      std::fprintf(stderr, "usage: %s [slc|mlc|tlc|pcm] [dataset_MiB]\n", argv[0]);
      return 1;
    }
  }
  const Bytes dataset = (argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256) * MiB;

  SyntheticWorkloadParams workload;
  workload.dataset_bytes = dataset;
  workload.tile_bytes = 8 * MiB;
  workload.sweeps = 2;
  workload.checkpoint_bytes = 4 * MiB;
  const Trace trace = synthesize_ooc_trace(workload);

  std::printf("OoC replay on %s: %.0f MiB dataset, %zu requests, %.0f MiB moved\n\n",
              std::string(to_string(media)).c_str(), static_cast<double>(dataset) / static_cast<double>(MiB),
              trace.size(), static_cast<double>(trace.stats().total_bytes) / static_cast<double>(MiB));

  Table table({"Configuration", "MB/s", "vs ION", "chan%", "pkg%", "PAL4%",
               "device reqs"});
  const ExperimentResult ion = run_experiment(ion_gpfs_config(media), trace);
  auto add = [&](const ExperimentResult& result) {
    table.add_row({result.name, format("%.0f", result.achieved_mbps),
                   format("%.2fx", result.achieved_mbps / ion.achieved_mbps),
                   format("%.0f", 100.0 * result.channel_utilization),
                   format("%.0f", 100.0 * result.package_utilization),
                   format("%.0f", 100.0 * result.pal_fraction[3]),
                   with_commas(static_cast<long long>(result.device_requests))});
  };
  add(ion);
  for (const FsBehavior& fs : all_local_filesystems()) {
    add(run_experiment(cnl_fs_config(fs, media), trace));
  }
  add(run_experiment(cnl_ufs_config(media), trace));
  add(run_experiment(cnl_native16_config(media), trace));
  table.print();
  return 0;
}
