// Quickstart: simulate one compute-local SSD under UFS, push a simple
// OoC-style read stream through it, and print what the device did.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "cluster/configs.hpp"
#include "cluster/engine.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace nvmooc;

  // 1. An application access pattern: sequentially stream a 128 MiB
  //    dataset twice in 8 MiB tiles (what an OoC solver iteration does).
  Trace trace;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (Bytes offset; offset < 128 * MiB; offset += 8 * MiB) {
      trace.add(NvmOp::kRead, offset, 8 * MiB);
    }
  }

  // 2. A Table 2 configuration: compute-node-local SSD under the Unified
  //    File System, bridged PCIe 2.0 x8, ONFi SDR bus, MLC flash.
  const ExperimentConfig config = cnl_ufs_config(NvmType::kMlc);

  // 3. Replay and report.
  const ExperimentResult result = run_experiment(config, trace);

  std::printf("configuration : %s on %s\n", result.name.c_str(),
              std::string(to_string(result.media)).c_str());
  std::printf("data moved    : %.0f MiB\n", static_cast<double>(result.payload_bytes) / static_cast<double>(MiB));
  std::printf("makespan      : %.2f ms\n", static_cast<double>(result.makespan) / static_cast<double>(kMillisecond));
  std::printf("throughput    : %.0f MB/s\n", result.achieved_mbps);
  std::printf("channel util  : %.0f %%\n", 100.0 * result.channel_utilization);
  std::printf("package util  : %.0f %%\n", 100.0 * result.package_utilization);
  std::printf("PAL4 share    : %.0f %% of bytes (full channel+die+plane parallelism)\n",
              100.0 * result.pal_fraction[3]);

  // Compare against the same stream served from an I/O node over
  // InfiniBand + GPFS — the architecture the paper argues against.
  const ExperimentResult remote = run_experiment(ion_gpfs_config(NvmType::kMlc), trace);
  std::printf("\nION-GPFS would have delivered %.0f MB/s — compute-local NVM is %.1fx faster.\n",
              remote.achieved_mbps, result.achieved_mbps / remote.achieved_mbps);
  return 0;
}
