// The DOoC middleware stack in isolation: DataCutter-style filters and
// streams pump Hamiltonian tiles from node-local storage through a
// compute filter; the distributed data pool and the LAF migration
// directives move the result between "nodes". Demonstrates the
// middleware API without the eigensolver on top.
//
// Run: ./build/examples/dooc_pipeline
#include <cmath>
#include <cstdio>
#include <cstring>

#include "dooc/data_pool.hpp"
#include "dooc/filter_stream.hpp"
#include "dooc/laf.hpp"
#include "ooc/csr.hpp"
#include "ooc/ooc_operator.hpp"
#include "ooc/tile_store.hpp"

int main() {
  using namespace nvmooc;

  // A Hamiltonian pre-processed onto node-local storage.
  HamiltonianParams params;
  params.dimension = 20000;
  params.band_width = 48;
  const CsrMatrix h = synthetic_hamiltonian(params);
  MemoryStorage storage(h.storage_bytes(0, h.rows()) + 2 * MiB);
  OocHamiltonian ooc(h, storage, 1024);
  std::printf("dataset: %.1f MiB in %zu tiles (n=%zu, nnz=%zu)\n",
              static_cast<double>(ooc.dataset_bytes()) / static_cast<double>(MiB), ooc.tile_count(),
              h.rows(), h.nnz());

  // --- DataCutter pipeline: reader -> squared-sum filter -> reducer. ---
  struct TileChunk {
    std::size_t index;
    std::shared_ptr<std::vector<std::uint8_t>> bytes;
  };
  Stream<TileChunk> tiles(8);
  Stream<double> partials(8);
  double frobenius_sq = 0.0;

  Pipeline pipeline;
  pipeline.add_filter("read-tiles", [&] {
    for (std::size_t t = 0; t < ooc.tile_count(); ++t) {
      auto buffer = std::make_shared<std::vector<std::uint8_t>>(ooc.tile(t).bytes.value());
      storage.read(ooc.tile(t).offset, buffer->data(), Bytes{buffer->size()});
      tiles.push({t, std::move(buffer)});
    }
    tiles.close();
  });
  pipeline.add_filter("square-values", [&] {
    while (auto chunk = tiles.pop()) {
      // Tile layout: [rows|nnz][row counts][cols][values]; walk to the
      // value array and accumulate squares.
      const std::uint8_t* in = chunk->bytes->data();
      std::int64_t header[2];
      std::memcpy(header, in, sizeof(header));
      const std::size_t rows = static_cast<std::size_t>(header[0]);
      const std::size_t nnz = static_cast<std::size_t>(header[1]);
      const std::uint8_t* values = in + sizeof(header) + rows * sizeof(std::int32_t) +
                                   nnz * sizeof(std::int32_t);
      double sum = 0.0;
      for (std::size_t k = 0; k < nnz; ++k) {
        double value;
        std::memcpy(&value, values + k * sizeof(double), sizeof(double));
        sum += value * value;
      }
      partials.push(sum);
    }
    partials.close();
  });
  pipeline.add_filter("reduce", [&] {
    while (auto sum = partials.pop()) frobenius_sq += *sum;
  });
  pipeline.run();

  // Reference: direct walk over the in-core matrix.
  double reference = 0.0;
  for (double value : h.values()) reference += value * value;
  std::printf("pipeline  ||H||_F = %.6f\n", std::sqrt(frobenius_sq));
  std::printf("reference ||H||_F = %.6f (match: %s)\n", std::sqrt(reference),
              std::abs(frobenius_sq - reference) < 1e-6 * reference ? "yes" : "NO");

  // --- Data pool + LAF migration: publish a result, pre-load it back. --
  DataPool pool;
  LafContext laf(storage);
  const ArrayId published = laf.migrate_out(pool, /*offset=*/Bytes{}, 1 * MiB, /*node=*/3);
  std::printf("published 1 MiB of results to the pool as array %llu on node %u "
              "(sealed=%d, immutable from here on)\n",
              static_cast<unsigned long long>(published), pool.node_of(published),
              pool.is_sealed(published));
  laf.migrate_in(pool, published, ooc.dataset_bytes() + MiB);
  std::printf("and migrated it onto another node's local NVM — the pre-load "
              "directive the compute-local architecture runs before each job.\n");
  return 0;
}
